//! The virtual-time cost model.

use nfp_orchestrator::graph::{CopyKind, Segment, ServiceGraph};

/// Per-operation costs, in nanoseconds. Fill from host calibration (the
/// bench harness measures each) or use [`CostModel::paper_like`] for
/// testbed-shaped defaults.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Classifier work per packet (CT lookup + metadata tagging).
    pub classify_ns: f64,
    /// One direct ring hop between adjacent components (NFP's distributed
    /// runtime; also NIC→classifier and last-hop→wire).
    pub hop_ns: f64,
    /// Extra cost of relaying one hop through the centralized virtual
    /// switch (queuing + switch processing), *on top of* two ring hops.
    pub switch_ns: f64,
    /// Fixed cost of allocating + copying a header-only copy (OP#2).
    pub copy_header_ns: f64,
    /// Per-byte cost of copying payload (full copies only).
    pub copy_per_byte_ns: f64,
    /// Fixed merge cost per merged packet (AT bookkeeping).
    pub merge_base_ns: f64,
    /// Merge cost per collected arrival.
    pub merge_per_arrival_ns: f64,
    /// Merge cost per merge operation applied.
    pub merge_per_op_ns: f64,
    /// Per-NF service time, indexed by the graph's `NodeId`.
    pub nf_service_ns: Vec<f64>,
}

impl CostModel {
    /// Defaults shaped like the paper's DPDK/container testbed: ~1 µs
    /// hops, ~2 µs switch transit, sub-µs copy/merge. Use host calibration
    /// for real reproduction runs; these defaults are for tests and quick
    /// exploration.
    pub fn paper_like(nf_service_ns: Vec<f64>) -> Self {
        Self {
            classify_ns: 500.0,
            hop_ns: 1_000.0,
            switch_ns: 2_000.0,
            copy_header_ns: 150.0,
            copy_per_byte_ns: 0.06,
            merge_base_ns: 400.0,
            merge_per_arrival_ns: 150.0,
            merge_per_op_ns: 100.0,
            nf_service_ns,
        }
    }

    fn copy_cost(&self, kind: CopyKind, payload_bytes: usize) -> f64 {
        match kind {
            CopyKind::None => 0.0,
            CopyKind::HeaderOnly => self.copy_header_ns,
            CopyKind::Full => self.copy_header_ns + self.copy_per_byte_ns * payload_bytes as f64,
        }
    }
}

/// Latency decomposition for one packet traversal (ns).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// Classifier + hops.
    pub steering_ns: f64,
    /// NF service time on the packet's critical path.
    pub service_ns: f64,
    /// Packet copying.
    pub copy_ns: f64,
    /// Merging.
    pub merge_ns: f64,
}

impl LatencyBreakdown {
    /// Total latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.steering_ns + self.service_ns + self.copy_ns + self.merge_ns
    }

    /// Total latency in microseconds (paper unit).
    pub fn total_us(&self) -> f64 {
        self.total_ns() / 1e3
    }
}

/// NFP latency for one packet through `graph` with payload size
/// `payload_bytes` (affects full-copy cost only).
pub fn nfp_latency(
    graph: &ServiceGraph,
    model: &CostModel,
    payload_bytes: usize,
) -> LatencyBreakdown {
    let mut b = LatencyBreakdown {
        steering_ns: model.classify_ns + model.hop_ns, // classify + first hop
        ..Default::default()
    };
    for seg in &graph.segments {
        match seg {
            Segment::Sequential(n) => {
                b.service_ns += model.nf_service_ns[*n];
                b.steering_ns += model.hop_ns;
            }
            Segment::Parallel(grp) => {
                // Copies are made by the previous hop before fan-out.
                for m in &grp.members {
                    b.copy_ns += model.copy_cost(m.copy, payload_bytes);
                }
                // Critical path: slowest branch (fan-out hop + services).
                let slowest = grp
                    .members
                    .iter()
                    .map(|m| {
                        m.path
                            .iter()
                            .map(|&n| model.nf_service_ns[n] + model.hop_ns)
                            .sum::<f64>()
                    })
                    .fold(0.0f64, f64::max);
                b.service_ns += slowest;
                // Merge: wait for all arrivals, apply ops, forward.
                b.merge_ns += model.merge_base_ns
                    + model.merge_per_arrival_ns * grp.expected_arrivals() as f64
                    + model.merge_per_op_ns * grp.merge_ops().len() as f64;
                b.steering_ns += model.hop_ns; // merger → next
            }
        }
    }
    b
}

/// Latency of the same NFs as a **sequential chain on the NFP substrate**
/// (no copies, no merger — the paper's "NFP-sequential" bars).
pub fn nfp_sequential_latency(service_ns: &[f64], model: &CostModel) -> LatencyBreakdown {
    LatencyBreakdown {
        steering_ns: model.classify_ns + model.hop_ns * (service_ns.len() as f64 + 1.0),
        service_ns: service_ns.iter().sum(),
        ..Default::default()
    }
}

/// Latency of the chain on the OpenNetVM-style baseline: every hop relays
/// through the centralized switch (two ring transits + switch work).
pub fn onvm_latency(service_ns: &[f64], model: &CostModel) -> LatencyBreakdown {
    let hops = service_ns.len() as f64 + 1.0;
    LatencyBreakdown {
        steering_ns: model.classify_ns + hops * (2.0 * model.hop_ns + model.switch_ns),
        service_ns: service_ns.iter().sum(),
        ..Default::default()
    }
}

/// Latency under BESS-style run-to-completion: no inter-NF hops at all.
pub fn rtc_latency(service_ns: &[f64], model: &CostModel) -> LatencyBreakdown {
    LatencyBreakdown {
        steering_ns: model.classify_ns + 2.0 * model.hop_ns, // in + out
        service_ns: service_ns.iter().sum(),
        ..Default::default()
    }
}

/// NFP throughput (packets/second): the pipeline bottleneck stage.
///
/// Stages: the classifier (plus any entry copies), each NF (service + one
/// ring push), and the merger layer (merge work divided across
/// `merger_instances`, §6.3.3's load balancing).
pub fn nfp_throughput(
    graph: &ServiceGraph,
    model: &CostModel,
    payload_bytes: usize,
    merger_instances: usize,
) -> f64 {
    let mut worst_ns = model.classify_ns + model.hop_ns;
    let mut classifier_extra = 0.0;
    for seg in &graph.segments {
        match seg {
            Segment::Sequential(n) => {
                worst_ns = worst_ns.max(model.nf_service_ns[*n] + model.hop_ns);
            }
            Segment::Parallel(grp) => {
                for m in &grp.members {
                    // Copy work lands on whoever fans out; attribute it to
                    // the classifier/previous stage.
                    classifier_extra += model.copy_cost(m.copy, payload_bytes);
                    for &n in &m.path {
                        worst_ns = worst_ns.max(model.nf_service_ns[n] + model.hop_ns);
                    }
                }
                let merge_ns = model.merge_base_ns
                    + model.merge_per_arrival_ns * grp.expected_arrivals() as f64
                    + model.merge_per_op_ns * grp.merge_ops().len() as f64;
                worst_ns = worst_ns.max(merge_ns / merger_instances.max(1) as f64);
            }
        }
    }
    worst_ns = worst_ns.max(model.classify_ns + model.hop_ns + classifier_extra);
    1e9 / worst_ns
}

/// NFP throughput with RSS-style flow sharding: `shards` full engine
/// replicas, each running the per-shard pipeline of [`nfp_throughput`],
/// fronted by a 5-tuple hash dispatcher. The dispatcher touches every
/// packet once (one hash + one ring push ≈ one hop), so aggregate
/// throughput is the smaller of `shards ×` the per-shard pipeline rate and
/// the dispatcher's own rate — sharding scales until the front-end hash
/// becomes the bottleneck, exactly like hardware RSS.
pub fn nfp_sharded_throughput(
    graph: &ServiceGraph,
    model: &CostModel,
    payload_bytes: usize,
    merger_instances: usize,
    shards: usize,
) -> f64 {
    let per_shard = nfp_throughput(graph, model, payload_bytes, merger_instances);
    let dispatcher = 1e9 / model.hop_ns;
    (shards.max(1) as f64 * per_shard).min(dispatcher)
}

/// OpenNetVM throughput: the centralized switch relays `n+1` hops per
/// packet and is usually the bottleneck.
pub fn onvm_throughput(service_ns: &[f64], model: &CostModel) -> f64 {
    let switch_work = (service_ns.len() as f64 + 1.0) * (model.switch_ns + 2.0 * model.hop_ns);
    let nf_worst = service_ns.iter().copied().fold(0.0f64, f64::max) + 2.0 * model.hop_ns;
    let worst = switch_work.max(nf_worst).max(model.classify_ns);
    1e9 / worst
}

/// Run-to-completion throughput with `cores` replicas of the whole chain
/// (paper: "BESS could theoretically achieve 27.2 × (n+2) Mpps" by
/// duplicating the chain per core).
pub fn rtc_throughput(service_ns: &[f64], model: &CostModel, cores: usize) -> f64 {
    let per_packet = model.classify_ns + service_ns.iter().sum::<f64>();
    cores as f64 * 1e9 / per_packet
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_orchestrator::{compile, CompileOptions, Registry};
    use nfp_policy::Policy;

    fn graph(chain: &[&str]) -> ServiceGraph {
        compile(
            &Policy::from_chain(chain.iter().copied()),
            &Registry::paper_table2(),
            &[],
            &CompileOptions::default(),
        )
        .unwrap()
        .graph
    }

    fn uniform_model(n: usize, service: f64) -> CostModel {
        CostModel::paper_like(vec![service; n])
    }

    #[test]
    fn parallel_graph_beats_sequential_chain() {
        let g = graph(&["Monitor", "Firewall"]);
        let m = uniform_model(2, 10_000.0);
        let par = nfp_latency(&g, &m, 10).total_ns();
        let seq = nfp_sequential_latency(&[10_000.0, 10_000.0], &m).total_ns();
        assert!(par < seq, "parallel {par} >= sequential {seq}");
        // Degree-2 no-copy parallelism saves roughly one NF's service time.
        assert!(seq - par > 8_000.0);
    }

    #[test]
    fn onvm_pays_switch_tax_nfp_sequential_does_not() {
        let m = uniform_model(3, 5_000.0);
        let services = [5_000.0, 5_000.0, 5_000.0];
        let onvm = onvm_latency(&services, &m).total_ns();
        let nfp = nfp_sequential_latency(&services, &m).total_ns();
        let rtc = rtc_latency(&services, &m).total_ns();
        assert!(rtc < nfp && nfp < onvm, "rtc {rtc}, nfp {nfp}, onvm {onvm}");
    }

    #[test]
    fn latency_benefit_grows_with_nf_complexity() {
        // Paper Fig. 9: the relative win grows as NFs get heavier.
        let g = graph(&["Monitor", "Firewall"]);
        let relative_gain = |service: f64| {
            let m = uniform_model(2, service);
            let par = nfp_latency(&g, &m, 10).total_ns();
            let seq = nfp_sequential_latency(&[service, service], &m).total_ns();
            (seq - par) / seq
        };
        assert!(relative_gain(30_000.0) > relative_gain(1_000.0));
        // Asymptotically approaches 50% for degree 2.
        assert!(relative_gain(1_000_000.0) > 0.45);
    }

    #[test]
    fn copies_cost_latency_but_merge_dominates() {
        let g_nocopy = graph(&["Monitor", "Firewall"]);
        let g_copy = graph(&["Monitor", "LoadBalancer"]);
        let m = uniform_model(2, 10_000.0);
        let no_copy = nfp_latency(&g_nocopy, &m, 700);
        let with_copy = nfp_latency(&g_copy, &m, 700);
        assert_eq!(no_copy.copy_ns, 0.0);
        assert!(with_copy.copy_ns > 0.0);
        assert!(with_copy.merge_ns >= no_copy.merge_ns);
        // Header-only copy: payload size must not matter.
        let big = nfp_latency(&g_copy, &m, 1400);
        assert_eq!(with_copy.copy_ns, big.copy_ns);
    }

    #[test]
    fn throughput_orderings_match_table4() {
        // Table 4: RTC (with n+2 cores) > NFP > ONVM in processing rate.
        let services = [3_000.0, 3_000.0, 3_000.0];
        let m = uniform_model(3, 3_000.0);
        let g = graph(&["Monitor", "Firewall", "Gateway"]);
        let n = services.len();
        let rtc = rtc_throughput(&services, &m, n + 2);
        let nfp = nfp_throughput(&g, &m, 10, 2);
        let onvm = onvm_throughput(&services, &m);
        assert!(rtc > nfp, "rtc {rtc} <= nfp {nfp}");
        assert!(nfp > onvm, "nfp {nfp} <= onvm {onvm}");
    }

    #[test]
    fn sharding_scales_until_the_dispatcher_saturates() {
        let g = graph(&["Monitor", "Firewall"]);
        let m = uniform_model(2, 10_000.0);
        let one = nfp_sharded_throughput(&g, &m, 10, 2, 1);
        let two = nfp_sharded_throughput(&g, &m, 10, 2, 2);
        let four = nfp_sharded_throughput(&g, &m, 10, 2, 4);
        assert!((one - nfp_throughput(&g, &m, 10, 2)).abs() < 1e-6);
        // Heavy NFs: the pipeline, not the dispatcher, bounds each shard,
        // so doubling shards doubles throughput.
        assert!((two / one - 2.0).abs() < 1e-6, "two {two}, one {one}");
        assert!((four / one - 4.0).abs() < 1e-6);
        // Enough shards saturate the 5-tuple dispatcher: the curve goes
        // flat at 1e9 / hop_ns regardless of shard count.
        let dispatcher = 1e9 / m.hop_ns;
        let many = nfp_sharded_throughput(&g, &m, 10, 2, 10_000);
        assert!((many - dispatcher).abs() < 1e-6);
        assert!(
            nfp_sharded_throughput(&g, &m, 10, 2, 20_000) <= many + 1e-6,
            "beyond saturation, more shards must not help"
        );
    }

    #[test]
    fn breakdown_sums() {
        let g = graph(&["Monitor", "LoadBalancer"]);
        let m = uniform_model(2, 1_000.0);
        let b = nfp_latency(&g, &m, 100);
        let total = b.steering_ns + b.service_ns + b.copy_ns + b.merge_ns;
        assert!((b.total_ns() - total).abs() < 1e-9);
        assert!((b.total_us() - total / 1e3).abs() < 1e-9);
    }
}
