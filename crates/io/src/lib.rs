//! # nfp-io
//!
//! Packet I/O backends for the NFP dataplane, implementing the
//! [`nfp_packet::io`] `Ingress`/`Egress` contract three ways:
//!
//! * [`backends::GeneratorIngress`] / [`backends::HostileIngress`] — the
//!   in-process `nfp-traffic` generators, so every pre-existing workload
//!   runs unchanged behind the trait pair;
//! * [`backends::PcapIngress`] / [`backends::PcapEgress`] over the
//!   from-scratch classic-pcap codec in [`pcap`] — reproducible
//!   real-trace replay with capture timestamps stamped into packet
//!   metadata, plus the seeded golden-trace builder in [`trace`] behind
//!   the committed differential corpus;
//! * [`raw::RawPort`] — AF_PACKET raw sockets (feature `af-packet`,
//!   Linux), degrading gracefully to the [`raw::SocketPair`] loopback
//!   shim when `CAP_NET_RAW` is absent so CI always exercises the live
//!   path.
//!
//! No C capture library, no external crates: the pcap format and the
//! syscall bindings are written by hand against what `std` already
//! links.

#![warn(missing_docs)]

pub mod backends;
pub mod pcap;
pub mod raw;
pub mod trace;

pub use backends::{GeneratorIngress, HostileIngress, PcapEgress, PcapIngress};
pub use nfp_packet::io::{
    CollectEgress, Egress, Ingress, IoError, IoRunStats, NullEgress, VecIngress,
};
pub use pcap::{PcapFormat, PcapReader, PcapRecord, PcapWriter};
pub use raw::{RawPort, SocketPair};
pub use trace::{build_golden_pcap, build_golden_records, GoldenTraceSpec};
