//! The seeded golden-trace builder behind the committed `tests/data/`
//! corpus.
//!
//! A golden trace is a classic-pcap byte stream rebuilt bit-for-bit from
//! `(spec, seed)`: the differential suite first proves the committed
//! file equals the builder's output, then replays it through every
//! engine. Determinism comes from a self-contained SplitMix64 stream —
//! deliberately not the `rand` shim, so corpus bytes cannot drift if the
//! shim's algorithm ever changes.
//!
//! The mix is adversarial on purpose: normal flow traffic (the shared
//! [`nfp_packet::testutil::indexed_payload`] pattern), firewall-deny
//! tuples (172.16.x.0/24 : 7000+x, the synthetic-ACL deny space),
//! IDS-marker payloads, corrupted frames (foreign ethertype, foreign L4
//! protocol, sub-header truncation) and snaplen-cut records whose
//! `incl_len < orig_len` — the capture-level truncation the classifier
//! must reject as `AdmitError::Truncated`, never panic on.

use crate::pcap::{write_pcap_bytes, PcapFormat, PcapRecord};
use nfp_packet::ipv4::Ipv4Addr;
use nfp_packet::testutil::{indexed_payload, tcp_frame_bytes};

/// What a [`build_golden_records`] trace contains. Every knob is an
/// every-Nth stride (0 disables) so the mix is inspectable by eye.
#[derive(Debug, Clone)]
pub struct GoldenTraceSpec {
    /// Seed for the builder's SplitMix64 stream.
    pub seed: u64,
    /// Total records.
    pub packets: usize,
    /// Distinct well-formed flows to cycle through.
    pub flows: usize,
    /// Every Nth packet aims at the synthetic-ACL deny space.
    pub deny_every: usize,
    /// Every Nth packet embeds the IDS marker in its payload.
    pub malicious_every: usize,
    /// Every Nth frame is corrupted (ethertype/protocol damage or a cut
    /// below header size) before capture.
    pub malformed_every: usize,
    /// Every Nth record is snaplen-cut: captured bytes < wire length.
    pub truncated_every: usize,
    /// First record timestamp (ns); gaps are seeded 1–8 µs.
    pub base_ts_ns: u64,
}

impl GoldenTraceSpec {
    /// The committed `tests/data/golden_mixed.pcap` corpus: every
    /// adversarial ingredient at once.
    pub fn mixed(seed: u64) -> Self {
        Self {
            seed,
            packets: 256,
            flows: 24,
            deny_every: 7,
            malicious_every: 11,
            malformed_every: 13,
            truncated_every: 17,
            base_ts_ns: 1_000_000_000,
        }
    }

    /// The committed `tests/data/golden_clean.pcap` corpus: well-formed
    /// flow traffic only (byte-identity baseline).
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            packets: 128,
            flows: 16,
            deny_every: 0,
            malicious_every: 0,
            malformed_every: 0,
            truncated_every: 0,
            base_ts_ns: 500_000_000,
        }
    }
}

/// The IDS marker the synthetic signature set alerts on (mirrors
/// `TrafficSpec::malicious_marker`).
pub const IDS_MARKER: &[u8] = b"EVIL0001SIG";

/// SplitMix64: tiny, stable, and independent of the `rand` shim.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn stride_hits(i: usize, every: usize) -> bool {
    every != 0 && (i + 1).is_multiple_of(every)
}

/// Build the deterministic record sequence for `spec`.
pub fn build_golden_records(spec: &GoldenTraceSpec) -> Vec<PcapRecord> {
    let mut rng = SplitMix64(spec.seed);
    let mut ts = spec.base_ts_ns;
    let mut out = Vec::with_capacity(spec.packets);
    for i in 0..spec.packets {
        ts += 1_000 + rng.below(7) * 1_000; // 1–8 µs inter-arrival gaps
        let flow = (i % spec.flows.max(1)) as u32;
        let (sip, dip, sport, dport) = if stride_hits(i, spec.deny_every) {
            // The synthetic-ACL deny space: 172.16.x.0/24 : 7000+x.
            let x = (rng.below(100)) as u16;
            (
                Ipv4Addr::new(10, 3, 0, (flow % 256) as u8),
                Ipv4Addr::new(172, 16, (x % 256) as u8, 1),
                20_000 + flow as u16,
                7_000 + x,
            )
        } else {
            (
                Ipv4Addr::from_u32((10 << 24) | (1 << 16) | flow),
                Ipv4Addr::from_u32((10 << 24) | (2 << 16) | ((flow * 7) % 65_536)),
                20_000 + (flow % 20_000) as u16,
                80 + (flow % 8) as u16 * 1000,
            )
        };
        let payload_len = 10 + rng.below(120) as usize;
        let mut payload = indexed_payload(payload_len, i as u64);
        if stride_hits(i, spec.malicious_every) && payload_len >= 8 + IDS_MARKER.len() {
            payload[8..8 + IDS_MARKER.len()].copy_from_slice(IDS_MARKER);
        }
        let mut frame = tcp_frame_bytes(sip, dip, sport, dport, &payload);
        if stride_hits(i, spec.malformed_every) {
            match rng.below(3) {
                // Sub-header cut: the frame itself (not just the
                // capture) ends before Ethernet+IPv4 do.
                0 => frame.truncate(rng.below(34) as usize),
                // Foreign ethertype (IPv6).
                1 => {
                    frame[12] = 0x86;
                    frame[13] = 0xDD;
                }
                // Foreign L4 protocol.
                _ => frame[23] = 0xFD,
            }
        }
        let orig_len = frame.len() as u32;
        if stride_hits(i, spec.truncated_every) && frame.len() > 20 {
            // Snaplen cut: captured bytes end before the wire frame did.
            let keep = 14 + rng.below((frame.len() - 14) as u64 - 6) as usize;
            frame.truncate(keep);
        }
        out.push(PcapRecord {
            ts_ns: ts,
            orig_len,
            data: frame,
        });
    }
    out
}

/// Build the full pcap byte stream for `spec` (nanosecond, host-endian
/// — the committed corpus format).
pub fn build_golden_pcap(spec: &GoldenTraceSpec) -> Vec<u8> {
    write_pcap_bytes(&build_golden_records(spec), PcapFormat::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_deterministic_and_seed_sensitive() {
        let a = build_golden_pcap(&GoldenTraceSpec::mixed(42));
        let b = build_golden_pcap(&GoldenTraceSpec::mixed(42));
        assert_eq!(a, b);
        let c = build_golden_pcap(&GoldenTraceSpec::mixed(43));
        assert_ne!(a, c);
    }

    #[test]
    fn mixed_trace_contains_every_ingredient() {
        let recs = build_golden_records(&GoldenTraceSpec::mixed(42));
        assert_eq!(recs.len(), 256);
        let truncated = recs.iter().filter(|r| r.truncated()).count();
        assert!(truncated > 0, "no snaplen-cut records");
        let marked = recs
            .iter()
            .filter(|r| r.data.windows(IDS_MARKER.len()).any(|w| w == IDS_MARKER))
            .count();
        assert!(marked > 0, "no IDS markers");
        let unparseable = recs
            .iter()
            .filter(|r| {
                nfp_packet::Packet::from_bytes(&r.data)
                    .map(|mut p| p.parse().is_err())
                    .unwrap_or(true)
            })
            .count();
        assert!(unparseable > 0, "no malformed frames");
        let parseable = recs.len() - unparseable;
        assert!(
            parseable > recs.len() / 2,
            "most of the trace should still be admissible ({parseable}/{})",
            recs.len()
        );
        // Timestamps strictly increase — inter-arrival gaps are real.
        assert!(recs.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
    }

    #[test]
    fn clean_trace_is_fully_parseable_and_untruncated() {
        let recs = build_golden_records(&GoldenTraceSpec::clean(7));
        assert_eq!(recs.len(), 128);
        for r in &recs {
            assert!(!r.truncated());
            let mut p = nfp_packet::Packet::from_bytes(&r.data).unwrap();
            p.parse().unwrap();
        }
    }
}
