//! A from-scratch classic-pcap (libpcap tcpdump format) codec.
//!
//! The 24-byte global header carries one of four magics — microsecond or
//! nanosecond timestamp resolution, each in either byte order — followed
//! by 16-byte per-record headers:
//!
//! ```text
//! magic | ver 2.4 | thiszone | sigfigs | snaplen | linktype
//! ts_sec | ts_subsec | incl_len | orig_len | <incl_len frame bytes>
//! ```
//!
//! The reader accepts all four magic variants and normalizes timestamps
//! to nanoseconds; the writer can emit any of them, which is how the
//! round-trip property test exercises both endianness paths. A record
//! whose `incl_len` is smaller than its `orig_len` was cut by the
//! capture snaplen — the codec preserves the pair so replay surfaces the
//! truncation as [`PcapRecord::truncated`] instead of silently healing
//! or corrupting the frame. No C library is involved anywhere.

use nfp_packet::io::IoError;
use std::io::{Read, Write};

/// Classic pcap magic, microsecond timestamps, writer-native order.
pub const MAGIC_US: u32 = 0xA1B2_C3D4;
/// Classic pcap magic, nanosecond timestamps (the tcpdump `.pcapns`
/// variant), writer-native order.
pub const MAGIC_NS: u32 = 0xA1B2_3C4D;
/// Linktype 1: Ethernet (LINKTYPE_ETHERNET / DLT_EN10MB).
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Default snaplen: a full [`nfp_packet::packet::CAPACITY`]-sized frame
/// minus headroom, i.e. the largest frame a [`nfp_packet::Packet`] holds.
pub const DEFAULT_SNAPLEN: u32 =
    (nfp_packet::packet::CAPACITY - nfp_packet::packet::HEADROOM) as u32;

const GLOBAL_HEADER_LEN: usize = 24;
const RECORD_HEADER_LEN: usize = 16;

/// One captured frame: normalized timestamp, original wire length and
/// the (possibly snaplen-cut) captured bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp in nanoseconds since the epoch of the trace.
    pub ts_ns: u64,
    /// The frame's length on the wire.
    pub orig_len: u32,
    /// The captured bytes (`incl_len` of them).
    pub data: Vec<u8>,
}

impl PcapRecord {
    /// A record capturing `data` in full at `ts_ns`.
    pub fn full(ts_ns: u64, data: Vec<u8>) -> Self {
        let orig_len = data.len() as u32;
        Self {
            ts_ns,
            orig_len,
            data,
        }
    }

    /// Whether the capture snaplen cut this frame short of its wire
    /// length — replaying it yields a frame whose headers promise more
    /// bytes than exist, which the classifier rejects as truncated.
    pub fn truncated(&self) -> bool {
        (self.data.len() as u32) < self.orig_len
    }
}

/// How a [`PcapWriter`] encodes its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcapFormat {
    /// Nanosecond (`true`) or microsecond timestamp resolution.
    pub nanos: bool,
    /// Emit all fields byte-swapped relative to the writing host, as a
    /// capture written on a foreign-endian machine would be.
    pub swapped: bool,
    /// Capture snaplen: longer frames are cut to this many bytes with
    /// `orig_len` preserved.
    pub snaplen: u32,
}

impl Default for PcapFormat {
    fn default() -> Self {
        Self {
            nanos: true,
            swapped: false,
            snaplen: DEFAULT_SNAPLEN,
        }
    }
}

fn os_err(op: &'static str, e: &std::io::Error) -> IoError {
    IoError::Os {
        op,
        code: e.raw_os_error().unwrap_or(0),
    }
}

/// Streaming classic-pcap encoder over any [`Write`].
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    w: W,
    fmt: PcapFormat,
    wrote_header: bool,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// A writer with the given on-disk format; the global header is
    /// emitted lazily before the first record (or by [`Self::flush`]).
    pub fn new(w: W, fmt: PcapFormat) -> Self {
        Self {
            w,
            fmt,
            wrote_header: false,
            records: 0,
        }
    }

    fn u32(&self, v: u32) -> [u8; 4] {
        if self.fmt.swapped {
            v.swap_bytes().to_ne_bytes()
        } else {
            v.to_ne_bytes()
        }
    }

    fn header(&mut self) -> Result<(), IoError> {
        if self.wrote_header {
            return Ok(());
        }
        let magic = if self.fmt.nanos { MAGIC_NS } else { MAGIC_US };
        let mut h = Vec::with_capacity(GLOBAL_HEADER_LEN);
        h.extend_from_slice(&self.u32(magic));
        h.extend_from_slice(&self.u16(2)); // version major
        h.extend_from_slice(&self.u16(4)); // version minor
        h.extend_from_slice(&self.u32(0)); // thiszone
        h.extend_from_slice(&self.u32(0)); // sigfigs
        h.extend_from_slice(&self.u32(self.fmt.snaplen));
        h.extend_from_slice(&self.u32(LINKTYPE_ETHERNET));
        self.w.write_all(&h).map_err(|e| os_err("pcap write", &e))?;
        self.wrote_header = true;
        Ok(())
    }

    fn u16(&self, v: u16) -> [u8; 2] {
        if self.fmt.swapped {
            v.swap_bytes().to_ne_bytes()
        } else {
            v.to_ne_bytes()
        }
    }

    /// Append one record; frames longer than the snaplen are cut with
    /// `orig_len` preserved (the capture-truncation path).
    pub fn write_record(&mut self, rec: &PcapRecord) -> Result<(), IoError> {
        self.header()?;
        let (sec, sub) = if self.fmt.nanos {
            (rec.ts_ns / 1_000_000_000, rec.ts_ns % 1_000_000_000)
        } else {
            (
                rec.ts_ns / 1_000_000_000,
                (rec.ts_ns % 1_000_000_000) / 1_000,
            )
        };
        let keep = rec.data.len().min(self.fmt.snaplen as usize);
        let mut h = Vec::with_capacity(RECORD_HEADER_LEN + keep);
        h.extend_from_slice(&self.u32(sec as u32));
        h.extend_from_slice(&self.u32(sub as u32));
        h.extend_from_slice(&self.u32(keep as u32));
        h.extend_from_slice(&self.u32(rec.orig_len));
        h.extend_from_slice(&rec.data[..keep]);
        self.w.write_all(&h).map_err(|e| os_err("pcap write", &e))?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flush the underlying stream (emitting the global header if no
    /// record ever did, so an empty capture is still a valid file).
    pub fn flush(&mut self) -> Result<(), IoError> {
        self.header()?;
        self.w.flush().map_err(|e| os_err("pcap flush", &e))
    }

    /// Flush and hand back the underlying writer.
    pub fn into_inner(mut self) -> Result<W, IoError> {
        self.flush()?;
        Ok(self.w)
    }
}

/// Streaming classic-pcap decoder over any [`Read`]; detects resolution
/// and endianness from the magic.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    r: R,
    nanos: bool,
    swapped: bool,
    snaplen: u32,
    offset: u64,
}

impl<R: Read> PcapReader<R> {
    /// Parse the global header and return a record iterator-in-spirit.
    pub fn new(mut r: R) -> Result<Self, IoError> {
        let mut h = [0u8; GLOBAL_HEADER_LEN];
        read_exact(&mut r, &mut h, "pcap global header", 0)?;
        let raw_magic = u32::from_ne_bytes(h[0..4].try_into().unwrap());
        let (nanos, swapped) = match raw_magic {
            MAGIC_US => (false, false),
            MAGIC_NS => (true, false),
            m if m == MAGIC_US.swap_bytes() => (false, true),
            m if m == MAGIC_NS.swap_bytes() => (true, true),
            m => {
                return Err(IoError::Format {
                    what: "pcap magic",
                    detail: u64::from(m),
                })
            }
        };
        let u32_at = |i: usize| {
            let v = u32::from_ne_bytes(h[i..i + 4].try_into().unwrap());
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let linktype = u32_at(20);
        if linktype != LINKTYPE_ETHERNET {
            return Err(IoError::Format {
                what: "pcap linktype (want Ethernet)",
                detail: u64::from(linktype),
            });
        }
        Ok(Self {
            r,
            nanos,
            swapped,
            snaplen: u32_at(16),
            offset: GLOBAL_HEADER_LEN as u64,
        })
    }

    /// Whether the stream declares nanosecond resolution.
    pub fn nanos(&self) -> bool {
        self.nanos
    }

    /// Whether the stream is foreign-endian relative to this host.
    pub fn swapped(&self) -> bool {
        self.swapped
    }

    /// The capture snaplen declared in the global header.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// The next record, or `None` at a clean end of stream. A stream
    /// that ends mid-header or mid-frame is a format error, not EOF.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>, IoError> {
        let mut h = [0u8; RECORD_HEADER_LEN];
        match self.r.read(&mut h) {
            Ok(0) => return Ok(None),
            Ok(n) => {
                read_exact(&mut self.r, &mut h[n..], "pcap record header", self.offset)?;
            }
            Err(e) => return Err(os_err("pcap read", &e)),
        }
        let u32_at = |i: usize| {
            let v = u32::from_ne_bytes(h[i..i + 4].try_into().unwrap());
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let (sec, sub, incl_len, orig_len) = (u32_at(0), u32_at(4), u32_at(8), u32_at(12));
        // An incl_len past the declared snaplen (or our absolute frame
        // bound) is stream corruption — reading it would misalign every
        // later record.
        let bound = self.snaplen.max(DEFAULT_SNAPLEN);
        if incl_len > bound {
            return Err(IoError::Format {
                what: "pcap record incl_len",
                detail: u64::from(incl_len),
            });
        }
        let mut data = vec![0u8; incl_len as usize];
        read_exact(&mut self.r, &mut data, "pcap record data", self.offset)?;
        self.offset += (RECORD_HEADER_LEN + incl_len as usize) as u64;
        let sub = u64::from(sub);
        let ts_ns = u64::from(sec) * 1_000_000_000 + if self.nanos { sub } else { sub * 1_000 };
        Ok(Some(PcapRecord {
            ts_ns,
            orig_len,
            data,
        }))
    }

    /// Drain the remaining records.
    pub fn collect_records(&mut self) -> Result<Vec<PcapRecord>, IoError> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

fn read_exact<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    what: &'static str,
    offset: u64,
) -> Result<(), IoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(IoError::Format {
                    what,
                    detail: offset,
                })
            }
            Ok(n) => filled += n,
            Err(e) => return Err(os_err("pcap read", &e)),
        }
    }
    Ok(())
}

/// Encode `records` into one in-memory pcap byte stream.
pub fn write_pcap_bytes(records: &[PcapRecord], fmt: PcapFormat) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new(), fmt);
    for rec in records {
        w.write_record(rec).expect("Vec<u8> writes are infallible");
    }
    w.into_inner().expect("Vec<u8> flush is infallible")
}

/// Decode every record of an in-memory pcap byte stream.
pub fn read_pcap_bytes(bytes: &[u8]) -> Result<Vec<PcapRecord>, IoError> {
    PcapReader::new(bytes)?.collect_records()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PcapRecord> {
        vec![
            PcapRecord::full(1_000_000_123, vec![0xAA; 60]),
            PcapRecord::full(1_000_500_456, Vec::new()),
            PcapRecord {
                ts_ns: 2_000_000_789,
                orig_len: 1500,
                data: vec![0x55; 96],
            },
        ]
    }

    #[test]
    fn round_trips_all_four_magics() {
        for nanos in [false, true] {
            for swapped in [false, true] {
                let fmt = PcapFormat {
                    nanos,
                    swapped,
                    ..PcapFormat::default()
                };
                let bytes = write_pcap_bytes(&sample(), fmt);
                let mut r = PcapReader::new(&bytes[..]).unwrap();
                assert_eq!(r.nanos(), nanos);
                assert_eq!(r.swapped(), swapped);
                let got = r.collect_records().unwrap();
                let mut want = sample();
                if !nanos {
                    // Microsecond files quantize the sub-second part.
                    for rec in &mut want {
                        rec.ts_ns = (rec.ts_ns / 1_000) * 1_000;
                    }
                }
                assert_eq!(got, want, "nanos={nanos} swapped={swapped}");
            }
        }
    }

    #[test]
    fn snaplen_cuts_frames_and_flags_truncation() {
        let fmt = PcapFormat {
            snaplen: 40,
            ..PcapFormat::default()
        };
        let bytes = write_pcap_bytes(&[PcapRecord::full(5, vec![7u8; 100])], fmt);
        let got = read_pcap_bytes(&bytes).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].data.len(), 40);
        assert_eq!(got[0].orig_len, 100);
        assert!(got[0].truncated());
        // A full record under the snaplen is not truncated.
        let ok = read_pcap_bytes(&write_pcap_bytes(
            &[PcapRecord::full(5, vec![7u8; 30])],
            fmt,
        ))
        .unwrap();
        assert!(!ok[0].truncated());
    }

    #[test]
    fn empty_capture_is_a_valid_file() {
        let bytes = write_pcap_bytes(&[], PcapFormat::default());
        assert_eq!(bytes.len(), 24);
        assert!(read_pcap_bytes(&bytes).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_and_foreign_linktype_are_rejected() {
        let mut bytes = write_pcap_bytes(&[], PcapFormat::default());
        bytes[0..4].copy_from_slice(&0xDEAD_BEEFu32.to_ne_bytes());
        assert!(matches!(
            PcapReader::new(&bytes[..]).unwrap_err(),
            IoError::Format {
                what: "pcap magic",
                ..
            }
        ));
        let mut bytes = write_pcap_bytes(&[], PcapFormat::default());
        bytes[20..24].copy_from_slice(&101u32.to_ne_bytes()); // raw IP
        assert!(matches!(
            PcapReader::new(&bytes[..]).unwrap_err(),
            IoError::Format {
                what: "pcap linktype (want Ethernet)",
                ..
            }
        ));
    }

    #[test]
    fn stream_cut_mid_record_is_a_format_error_not_a_panic() {
        let bytes = write_pcap_bytes(&sample(), PcapFormat::default());
        // Cut inside the first record's data.
        let cut = &bytes[..24 + 16 + 10];
        let mut r = PcapReader::new(cut).unwrap();
        assert!(matches!(
            r.next_record().unwrap_err(),
            IoError::Format {
                what: "pcap record data",
                ..
            }
        ));
        // Cut inside a record header.
        let cut = &bytes[..24 + 7];
        let mut r = PcapReader::new(cut).unwrap();
        assert!(matches!(
            r.next_record().unwrap_err(),
            IoError::Format {
                what: "pcap record header",
                ..
            }
        ));
        // Cut inside the global header.
        assert!(PcapReader::new(&bytes[..10]).is_err());
    }

    #[test]
    fn insane_incl_len_is_rejected_without_allocation() {
        let mut bytes = write_pcap_bytes(&[PcapRecord::full(1, vec![0; 8])], PcapFormat::default());
        bytes[24 + 8..24 + 12].copy_from_slice(&u32::MAX.to_ne_bytes());
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            r.next_record().unwrap_err(),
            IoError::Format {
                what: "pcap record incl_len",
                ..
            }
        ));
    }
}
