//! Engine-facing [`Ingress`]/[`Egress`] adapters: the in-process traffic
//! generators and the classic-pcap file codec.
//!
//! Pcap ingress stamps every packet's metadata with the record's capture
//! timestamp (`Metadata::with_ingress_ns`), which the classifier
//! carries through admission and feeds into the telemetry `ingress`
//! inter-arrival histogram — a replayed trace keeps its timing shape.
//! Pcap egress writes delivered frames back out, reusing the ingress
//! stamp as the record timestamp when present (falling back to a
//! monotonic record counter so the output is still a valid capture).

use crate::pcap::{PcapFormat, PcapReader, PcapRecord, PcapWriter};
use nfp_packet::io::{Egress, Ingress, IoError};
use nfp_packet::Packet;
use nfp_traffic::gen::{TrafficGenerator, TrafficSpec};
use nfp_traffic::hostile::{HostileGenerator, HostileSpec};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The `nfp-traffic` flow generator as an ingress backend: emits exactly
/// `total` packets, then ends the stream. All pre-existing closed-loop
/// workloads are this backend with the engine's historical defaults.
#[derive(Debug)]
pub struct GeneratorIngress {
    gen: TrafficGenerator,
    remaining: u64,
}

impl GeneratorIngress {
    /// A budgeted ingress over a fresh generator.
    pub fn new(spec: TrafficSpec, total: u64) -> Self {
        Self::from_generator(TrafficGenerator::new(spec), total)
    }

    /// Adopt an existing generator mid-stream.
    pub fn from_generator(gen: TrafficGenerator, total: u64) -> Self {
        Self {
            gen,
            remaining: total,
        }
    }
}

impl Ingress for GeneratorIngress {
    fn next_burst(&mut self, max: usize) -> Result<Option<Vec<Packet>>, IoError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let n = (max.max(1) as u64).min(self.remaining);
        self.remaining -= n;
        Ok(Some(self.gen.batch(n as usize)))
    }

    fn label(&self) -> &'static str {
        "generator"
    }
}

/// The hostile-profile generator as an ingress backend (soak harness).
#[derive(Debug)]
pub struct HostileIngress {
    gen: HostileGenerator,
    remaining: u64,
}

impl HostileIngress {
    /// A budgeted ingress over a fresh hostile generator.
    pub fn new(spec: HostileSpec, total: u64) -> Self {
        Self {
            gen: HostileGenerator::new(spec),
            remaining: total,
        }
    }
}

impl Ingress for HostileIngress {
    fn next_burst(&mut self, max: usize) -> Result<Option<Vec<Packet>>, IoError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let n = (max.max(1) as u64).min(self.remaining);
        self.remaining -= n;
        Ok(Some(self.gen.batch(n as usize)))
    }

    fn label(&self) -> &'static str {
        "hostile"
    }
}

/// Build the in-memory packet a pcap record replays as: bytes as
/// captured (snaplen cuts included — the classifier, not the reader,
/// judges them) with the capture timestamp stamped into the metadata.
pub fn packet_from_record(rec: &PcapRecord) -> Result<Packet, IoError> {
    let mut pkt = Packet::from_bytes(&rec.data).map_err(|_| IoError::FrameTooLarge {
        len: rec.data.len(),
    })?;
    pkt.set_meta(pkt.meta().with_ingress_ns(rec.ts_ns));
    Ok(pkt)
}

/// Classic-pcap file/stream replay ingress.
#[derive(Debug)]
pub struct PcapIngress<R: Read> {
    reader: PcapReader<R>,
    done: bool,
    records: u64,
}

impl PcapIngress<BufReader<File>> {
    /// Open a pcap file for replay.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, IoError> {
        let f = File::open(path).map_err(|e| IoError::Os {
            op: "open pcap",
            code: e.raw_os_error().unwrap_or(0),
        })?;
        Self::from_reader(BufReader::new(f))
    }
}

impl PcapIngress<std::io::Cursor<Vec<u8>>> {
    /// Replay an in-memory capture.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, IoError> {
        Self::from_reader(std::io::Cursor::new(bytes))
    }
}

impl<R: Read> PcapIngress<R> {
    /// Wrap any readable pcap stream.
    pub fn from_reader(r: R) -> Result<Self, IoError> {
        Ok(Self {
            reader: PcapReader::new(r)?,
            done: false,
            records: 0,
        })
    }

    /// Records replayed so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

impl<R: Read> Ingress for PcapIngress<R> {
    fn next_burst(&mut self, max: usize) -> Result<Option<Vec<Packet>>, IoError> {
        if self.done {
            return Ok(None);
        }
        let mut out = Vec::with_capacity(max.max(1));
        while out.len() < max.max(1) {
            match self.reader.next_record()? {
                Some(rec) => {
                    out.push(packet_from_record(&rec)?);
                    self.records += 1;
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }

    fn label(&self) -> &'static str {
        "pcap"
    }
}

/// Classic-pcap record egress: delivered frames become capture records.
#[derive(Debug)]
pub struct PcapEgress<W: Write> {
    writer: PcapWriter<W>,
    /// Fallback clock for packets without an ingress stamp: record
    /// index in microsecond steps, so output files stay monotonic.
    fallback_ns: u64,
}

impl PcapEgress<BufWriter<File>> {
    /// Create/truncate a pcap file for delivered output.
    pub fn create(path: impl AsRef<Path>, fmt: PcapFormat) -> Result<Self, IoError> {
        let f = File::create(path).map_err(|e| IoError::Os {
            op: "create pcap",
            code: e.raw_os_error().unwrap_or(0),
        })?;
        Ok(Self::from_writer(BufWriter::new(f), fmt))
    }
}

impl PcapEgress<Vec<u8>> {
    /// Capture output in memory (tests).
    pub fn in_memory(fmt: PcapFormat) -> Self {
        Self::from_writer(Vec::new(), fmt)
    }
}

impl<W: Write> PcapEgress<W> {
    /// Wrap any writable stream.
    pub fn from_writer(w: W, fmt: PcapFormat) -> Self {
        Self {
            writer: PcapWriter::new(w, fmt),
            fallback_ns: 0,
        }
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.writer.records()
    }

    /// Flush and hand back the underlying writer.
    pub fn into_inner(self) -> Result<W, IoError> {
        self.writer.into_inner()
    }
}

impl<W: Write> Egress for PcapEgress<W> {
    fn emit_burst(&mut self, pkts: &[Packet]) -> Result<(), IoError> {
        for p in pkts {
            let ts = p.meta().ingress_ns();
            let ts = if ts != 0 {
                ts
            } else {
                self.fallback_ns += 1_000;
                self.fallback_ns
            };
            self.writer
                .write_record(&PcapRecord::full(ts, p.data().to_vec()))?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), IoError> {
        self.writer.flush()
    }

    fn label(&self) -> &'static str {
        "pcap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::write_pcap_bytes;
    use nfp_packet::testutil::{indexed_payload, ip, tcp_frame_bytes};

    fn frames(n: usize) -> Vec<PcapRecord> {
        (0..n)
            .map(|i| {
                PcapRecord::full(
                    1_000 + i as u64 * 500,
                    tcp_frame_bytes(
                        ip(10, 0, 0, 1),
                        ip(10, 0, 0, 2),
                        2000 + i as u16,
                        80,
                        &indexed_payload(32, i as u64),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn generator_ingress_respects_budget_and_matches_generator() {
        let spec = TrafficSpec {
            flows: 4,
            seed: 7,
            ..TrafficSpec::default()
        };
        let mut ing = GeneratorIngress::new(spec.clone(), 10);
        let mut got = Vec::new();
        while let Some(burst) = ing.next_burst(3).unwrap() {
            got.extend(burst);
        }
        assert_eq!(got.len(), 10);
        let want = TrafficGenerator::new(spec).batch(10);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.data(), w.data());
        }
    }

    #[test]
    fn hostile_ingress_ends_after_budget() {
        let mut ing = HostileIngress::new(HostileSpec::syn_flood(3), 5);
        assert_eq!(ing.next_burst(8).unwrap().unwrap().len(), 5);
        assert!(ing.next_burst(8).unwrap().is_none());
    }

    #[test]
    fn pcap_ingress_replays_bytes_and_stamps_timestamps() {
        let recs = frames(5);
        let bytes = write_pcap_bytes(&recs, PcapFormat::default());
        let mut ing = PcapIngress::from_bytes(bytes).unwrap();
        let burst = ing.next_burst(3).unwrap().unwrap();
        assert_eq!(burst.len(), 3);
        assert_eq!(burst[0].data(), &recs[0].data[..]);
        assert_eq!(burst[0].meta().ingress_ns(), 1_000);
        assert_eq!(burst[2].meta().ingress_ns(), 2_000);
        let rest = ing.next_burst(16).unwrap().unwrap();
        assert_eq!(rest.len(), 2);
        assert!(ing.next_burst(1).unwrap().is_none());
        assert_eq!(ing.records(), 5);
    }

    #[test]
    fn pcap_egress_round_trips_delivered_frames() {
        let recs = frames(4);
        let bytes = write_pcap_bytes(&recs, PcapFormat::default());
        let mut ing = PcapIngress::from_bytes(bytes).unwrap();
        let pkts = ing.next_burst(16).unwrap().unwrap();
        let mut eg = PcapEgress::in_memory(PcapFormat::default());
        eg.emit_burst(&pkts).unwrap();
        eg.flush().unwrap();
        let out = eg.into_inner().unwrap();
        let got = crate::pcap::read_pcap_bytes(&out).unwrap();
        assert_eq!(got, recs, "ingress stamp is reused as the record ts");
    }

    #[test]
    fn unstamped_packets_get_a_monotonic_fallback_clock() {
        let mut eg = PcapEgress::in_memory(PcapFormat::default());
        let pkts: Vec<Packet> = frames(3)
            .iter()
            .map(|r| Packet::from_bytes(&r.data).unwrap())
            .collect();
        eg.emit_burst(&pkts).unwrap();
        let got = crate::pcap::read_pcap_bytes(&eg.into_inner().unwrap()).unwrap();
        let ts: Vec<u64> = got.iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![1_000, 2_000, 3_000]);
    }

    #[test]
    fn oversized_record_is_a_frame_too_large_error() {
        let rec = PcapRecord::full(1, vec![0u8; 1921]);
        assert!(matches!(
            packet_from_record(&rec).unwrap_err(),
            IoError::FrameTooLarge { len: 1921 }
        ));
    }
}
