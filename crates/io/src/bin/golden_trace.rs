//! Regenerate the committed golden-trace corpus under `tests/data/`.
//!
//! ```text
//! cargo run -p nfp-io --bin golden_trace -- tests/data
//! ```
//!
//! The differential suite (`tests/pcap_differential.rs`) asserts the
//! committed files byte-equal the builder's output, so this binary only
//! needs re-running when [`GoldenTraceSpec`] or the pcap writer changes
//! on purpose — and the test failing first is the point.

use nfp_io::trace::{build_golden_pcap, GoldenTraceSpec};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/data".to_string());
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, spec) in [
        ("golden_mixed.pcap", GoldenTraceSpec::mixed(42)),
        ("golden_clean.pcap", GoldenTraceSpec::clean(7)),
    ] {
        let path = format!("{dir}/{name}");
        let bytes = build_golden_pcap(&spec);
        std::fs::write(&path, &bytes).expect("write corpus file");
        println!("wrote {path} ({} bytes)", bytes.len());
    }
}
