//! Live packet I/O: AF_PACKET raw sockets, with a loopback socket-pair
//! shim for unprivileged environments.
//!
//! The real backend (`af-packet` feature, Linux only) opens an
//! `AF_PACKET`/`SOCK_RAW` socket bound to an interface and moves whole
//! Ethernet frames — the one deployment path that touches an actual NIC.
//! Opening it needs `CAP_NET_RAW`; when the capability (or the feature,
//! or the OS) is absent, [`RawPort::open`] degrades to a
//! [`SocketPair`] — two connected `AF_UNIX` datagram sockets where each
//! datagram is one frame — so CI and unprivileged checkouts still
//! exercise the exact burst/stamp/backpressure code paths of a live
//! port. Syscalls are declared `extern "C"` against the libc `std`
//! already links; no external crate is involved.

use nfp_packet::io::{Egress, Ingress, IoError};
use nfp_packet::packet::{CAPACITY, HEADROOM};
use nfp_packet::Packet;
use std::os::unix::net::UnixDatagram;
use std::time::Instant;

/// Upper bound on one received frame (what a [`Packet`] can hold).
const MAX_FRAME: usize = CAPACITY - HEADROOM;

/// A live bidirectional packet port: ingress pulls received frames,
/// egress transmits. Frames are stamped with a monotonic receive
/// timestamp (nanoseconds since the port opened, never 0).
#[derive(Debug)]
pub struct RawPort {
    inner: PortInner,
    opened: Instant,
    /// End the ingress stream after this many received frames
    /// (`u64::MAX` = run forever; set a budget for closed-loop runs).
    budget: u64,
    received: u64,
    /// Whether this port is a real AF_PACKET socket (false = loopback
    /// shim).
    real: bool,
}

#[derive(Debug)]
enum PortInner {
    #[cfg(all(target_os = "linux", feature = "af-packet"))]
    AfPacket(af_packet::AfPacketSocket),
    /// `tx` and `rx` are clones of one pair end for peer-connected
    /// ports, or the two ends of one pair for a self-echoing port.
    Loopback { tx: UnixDatagram, rx: UnixDatagram },
}

impl RawPort {
    /// Open a live port on `interface`, degrading to a self-connected
    /// loopback pair when AF_PACKET is unavailable (feature off, not
    /// Linux, or `CAP_NET_RAW` denied at runtime). The returned flag in
    /// [`RawPort::is_real`] tells which path was taken; the degradation
    /// reason is reported so callers can log it.
    pub fn open(interface: &str) -> Result<(Self, Option<IoError>), IoError> {
        match Self::open_af_packet(interface) {
            Ok(port) => Ok((port, None)),
            Err(reason) => {
                // Self-echoing shim: one pair, transmit on one end and
                // receive on the other, so frames sent on the port come
                // back to it like a NIC in loopback test mode.
                let (tx, rx) = unix_pair()?;
                let port = RawPort {
                    inner: PortInner::Loopback { tx, rx },
                    opened: Instant::now(),
                    budget: u64::MAX,
                    received: 0,
                    real: false,
                };
                Ok((port, Some(reason)))
            }
        }
    }

    #[cfg(all(target_os = "linux", feature = "af-packet"))]
    fn open_af_packet(interface: &str) -> Result<Self, IoError> {
        let sock = af_packet::AfPacketSocket::open(interface)?;
        Ok(Self {
            inner: PortInner::AfPacket(sock),
            opened: Instant::now(),
            budget: u64::MAX,
            received: 0,
            real: true,
        })
    }

    #[cfg(not(all(target_os = "linux", feature = "af-packet")))]
    fn open_af_packet(_interface: &str) -> Result<Self, IoError> {
        Err(IoError::Unsupported {
            why: "AF_PACKET backend not compiled in (feature `af-packet`, Linux only)",
        })
    }

    /// Whether this is a real AF_PACKET socket (false = loopback shim).
    pub fn is_real(&self) -> bool {
        self.real
    }

    /// End the ingress stream after `n` received frames, turning a live
    /// port into a closed-loop source for engine runs.
    pub fn set_budget(&mut self, n: u64) {
        self.budget = n;
    }

    /// Frames received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    fn stamp_ns(&self) -> u64 {
        (self.opened.elapsed().as_nanos() as u64).max(1)
    }

    fn recv_one(&mut self, buf: &mut [u8]) -> Result<Option<usize>, IoError> {
        match &mut self.inner {
            #[cfg(all(target_os = "linux", feature = "af-packet"))]
            PortInner::AfPacket(s) => s.recv_nonblocking(buf),
            PortInner::Loopback { rx, .. } => match rx.recv(buf) {
                Ok(n) => Ok(Some(n)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(IoError::Os {
                    op: "loopback recv",
                    code: e.raw_os_error().unwrap_or(0),
                }),
            },
        }
    }

    fn send_one(&mut self, frame: &[u8]) -> Result<(), IoError> {
        match &mut self.inner {
            #[cfg(all(target_os = "linux", feature = "af-packet"))]
            PortInner::AfPacket(s) => s.send(frame),
            PortInner::Loopback { tx, .. } => match tx.send(frame) {
                Ok(_) => Ok(()),
                // A full datagram queue is backpressure, not failure:
                // the frame is dropped exactly like a NIC TX ring drop.
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(()),
                Err(e) => Err(IoError::Os {
                    op: "loopback send",
                    code: e.raw_os_error().unwrap_or(0),
                }),
            },
        }
    }
}

impl Ingress for RawPort {
    fn next_burst(&mut self, max: usize) -> Result<Option<Vec<Packet>>, IoError> {
        if self.received >= self.budget {
            return Ok(None);
        }
        let mut out = Vec::new();
        let mut buf = [0u8; MAX_FRAME];
        while out.len() < max.max(1) && self.received < self.budget {
            match self.recv_one(&mut buf)? {
                Some(n) => {
                    let mut pkt = Packet::from_bytes(&buf[..n])
                        .map_err(|_| IoError::FrameTooLarge { len: n })?;
                    pkt.set_meta(pkt.meta().with_ingress_ns(self.stamp_ns()));
                    out.push(pkt);
                    self.received += 1;
                }
                None => break, // nothing queued right now; live source
            }
        }
        Ok(Some(out))
    }

    fn label(&self) -> &'static str {
        if self.real {
            "af-packet"
        } else {
            "loopback"
        }
    }
}

impl Egress for RawPort {
    fn emit_burst(&mut self, pkts: &[Packet]) -> Result<(), IoError> {
        for p in pkts {
            self.send_one(p.data())?;
        }
        Ok(())
    }

    fn label(&self) -> &'static str {
        if self.real {
            "af-packet"
        } else {
            "loopback"
        }
    }
}

/// The loopback shim: a connected `AF_UNIX` datagram pair where each
/// datagram is one Ethernet frame. Both ends are full [`RawPort`]s, so
/// tests wire one end to a traffic source and hand the other to an
/// engine — the same code path a real NIC port would exercise.
#[derive(Debug)]
pub struct SocketPair;

impl SocketPair {
    /// Create a connected port pair (both ends non-blocking).
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Result<(RawPort, RawPort), IoError> {
        let (a, b) = unix_pair()?;
        let port = |sock: UnixDatagram| -> Result<RawPort, IoError> {
            let tx = sock.try_clone().map_err(|e| IoError::Os {
                op: "dup socketpair end",
                code: e.raw_os_error().unwrap_or(0),
            })?;
            Ok(RawPort {
                inner: PortInner::Loopback { tx, rx: sock },
                opened: Instant::now(),
                budget: u64::MAX,
                received: 0,
                real: false,
            })
        };
        Ok((port(a)?, port(b)?))
    }
}

fn unix_pair() -> Result<(UnixDatagram, UnixDatagram), IoError> {
    let (a, b) = UnixDatagram::pair().map_err(|e| IoError::Os {
        op: "socketpair",
        code: e.raw_os_error().unwrap_or(0),
    })?;
    for s in [&a, &b] {
        s.set_nonblocking(true).map_err(|e| IoError::Os {
            op: "set_nonblocking",
            code: e.raw_os_error().unwrap_or(0),
        })?;
    }
    Ok((a, b))
}

/// The real AF_PACKET socket, compiled only with the `af-packet`
/// feature on Linux. Syscalls are declared against the libc `std`
/// already links (the repo-wide no-new-dependencies rule).
#[cfg(all(target_os = "linux", feature = "af-packet"))]
mod af_packet {
    use nfp_packet::io::IoError;

    const AF_PACKET: i32 = 17;
    const SOCK_RAW: i32 = 3;
    /// ETH_P_ALL in network byte order, as `socket(2)` expects.
    const ETH_P_ALL_BE: i32 = 0x0003u16.to_be() as i32;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVTIMEO: i32 = 20;
    const MSG_DONTWAIT: i32 = 0x40;
    const EAGAIN: i32 = 11;
    const EWOULDBLOCK: i32 = 11;

    #[repr(C)]
    struct SockaddrLl {
        sll_family: u16,
        sll_protocol: u16,
        sll_ifindex: i32,
        sll_hatype: u16,
        sll_pkttype: u8,
        sll_halen: u8,
        sll_addr: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrLl, addrlen: u32) -> i32;
        fn sendto(
            fd: i32,
            buf: *const u8,
            len: usize,
            flags: i32,
            addr: *const SockaddrLl,
            addrlen: u32,
        ) -> isize;
        fn recvfrom(
            fd: i32,
            buf: *mut u8,
            len: usize,
            flags: i32,
            addr: *mut SockaddrLl,
            addrlen: *mut u32,
        ) -> isize;
        fn close(fd: i32) -> i32;
        fn if_nametoindex(name: *const u8) -> u32;
        fn __errno_location() -> *mut i32;
    }

    fn errno() -> i32 {
        unsafe { *__errno_location() }
    }

    /// An open, interface-bound AF_PACKET socket.
    #[derive(Debug)]
    pub struct AfPacketSocket {
        fd: i32,
        ifindex: i32,
    }

    impl AfPacketSocket {
        pub fn open(interface: &str) -> Result<Self, IoError> {
            let mut name = interface.as_bytes().to_vec();
            name.push(0);
            let ifindex = unsafe { if_nametoindex(name.as_ptr()) };
            if ifindex == 0 {
                return Err(IoError::Os {
                    op: "if_nametoindex",
                    code: errno(),
                });
            }
            let fd = unsafe { socket(AF_PACKET, SOCK_RAW, ETH_P_ALL_BE) };
            if fd < 0 {
                // EPERM/EACCES: no CAP_NET_RAW — the graceful-degradation
                // trigger.
                return Err(IoError::Os {
                    op: "socket(AF_PACKET)",
                    code: errno(),
                });
            }
            let addr = SockaddrLl {
                sll_family: AF_PACKET as u16,
                sll_protocol: ETH_P_ALL_BE as u16,
                sll_ifindex: ifindex as i32,
                sll_hatype: 0,
                sll_pkttype: 0,
                sll_halen: 0,
                sll_addr: [0; 8],
            };
            let rc = unsafe { bind(fd, &addr, std::mem::size_of::<SockaddrLl>() as u32) };
            if rc != 0 {
                let code = errno();
                unsafe { close(fd) };
                return Err(IoError::Os {
                    op: "bind(AF_PACKET)",
                    code,
                });
            }
            let _ = (SOL_SOCKET, SO_RCVTIMEO);
            Ok(Self {
                fd,
                ifindex: ifindex as i32,
            })
        }

        /// Receive one frame without blocking; `None` when nothing is
        /// queued.
        pub fn recv_nonblocking(&mut self, buf: &mut [u8]) -> Result<Option<usize>, IoError> {
            let n = unsafe {
                recvfrom(
                    self.fd,
                    buf.as_mut_ptr(),
                    buf.len(),
                    MSG_DONTWAIT,
                    std::ptr::null_mut(),
                    std::ptr::null_mut(),
                )
            };
            if n < 0 {
                let code = errno();
                if code == EAGAIN || code == EWOULDBLOCK {
                    return Ok(None);
                }
                return Err(IoError::Os {
                    op: "recvfrom(AF_PACKET)",
                    code,
                });
            }
            Ok(Some(n as usize))
        }

        /// Transmit one frame on the bound interface.
        pub fn send(&mut self, frame: &[u8]) -> Result<(), IoError> {
            let addr = SockaddrLl {
                sll_family: AF_PACKET as u16,
                sll_protocol: ETH_P_ALL_BE as u16,
                sll_ifindex: self.ifindex,
                sll_hatype: 0,
                sll_pkttype: 0,
                sll_halen: 0,
                sll_addr: [0; 8],
            };
            let n = unsafe {
                sendto(
                    self.fd,
                    frame.as_ptr(),
                    frame.len(),
                    0,
                    &addr,
                    std::mem::size_of::<SockaddrLl>() as u32,
                )
            };
            if n < 0 {
                return Err(IoError::Os {
                    op: "sendto(AF_PACKET)",
                    code: errno(),
                });
            }
            Ok(())
        }
    }

    impl Drop for AfPacketSocket {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_packet::testutil::{indexed_payload, ip, tcp_packet};

    fn pkt(i: u64) -> Packet {
        tcp_packet(
            ip(10, 0, 0, 1),
            ip(10, 0, 0, 2),
            4000 + i as u16,
            80,
            &indexed_payload(24, i),
        )
    }

    #[test]
    fn socket_pair_moves_frames_and_stamps_arrival() {
        let (mut a, mut b) = SocketPair::new().unwrap();
        let sent: Vec<Packet> = (0..6).map(pkt).collect();
        a.emit_burst(&sent[..4]).unwrap();
        a.emit_burst(&sent[4..]).unwrap();
        let burst = b.next_burst(4).unwrap().unwrap();
        assert_eq!(burst.len(), 4);
        for (g, w) in burst.iter().zip(&sent) {
            assert_eq!(g.data(), w.data());
            assert!(g.meta().ingress_ns() > 0, "receive stamp missing");
        }
        let rest = b.next_burst(16).unwrap().unwrap();
        assert_eq!(rest.len(), 2);
        // Live source with nothing queued: empty burst, not end-of-stream.
        assert_eq!(b.next_burst(4).unwrap().unwrap().len(), 0);
    }

    #[test]
    fn budget_turns_a_live_port_into_a_closed_loop_source() {
        let (mut a, mut b) = SocketPair::new().unwrap();
        b.set_budget(3);
        a.emit_burst(&(0..5).map(pkt).collect::<Vec<_>>()).unwrap();
        assert_eq!(b.next_burst(16).unwrap().unwrap().len(), 3);
        assert!(b.next_burst(16).unwrap().is_none(), "budget exhausted");
        assert_eq!(b.received(), 3);
    }

    #[test]
    fn open_degrades_gracefully_without_cap_net_raw() {
        // In this test environment the feature is off or the capability
        // is absent; either way open() must yield a working loopback
        // port and report why.
        let (mut port, reason) = RawPort::open("lo").unwrap();
        if !port.is_real() {
            assert!(reason.is_some(), "degradation must carry a reason");
            let p = pkt(0);
            port.emit_burst(std::slice::from_ref(&p)).unwrap();
            let burst = port.next_burst(4).unwrap().unwrap();
            assert_eq!(burst.len(), 1, "self-connected loopback echoes");
            assert_eq!(burst[0].data(), p.data());
        }
    }
}
