//! Property tests for the hand-written classic-pcap codec and the
//! capture-truncation admission path.
//!
//! * Arbitrary record sets — zero-length frames, snaplen-cut captures,
//!   arbitrary bytes, every header format (µs/ns × native/swapped) —
//!   survive write→read with byte-for-byte record fidelity, and the
//!   `incl_len < orig_len` truncation flag is preserved exactly.
//! * Snaplen-cut captures of real TCP frames replayed through a live
//!   classifier ([`SyncEngine::process`]) are rejected as
//!   [`AdmitError::Truncated`] whenever the cut lands inside the
//!   Ethernet/IPv4/TCP header budget — and *never* panic wherever it
//!   lands.

use nfp_dataplane::classifier::AdmitError;
use nfp_dataplane::sync_engine::{ProcessOutcome, SyncEngine};
use nfp_io::backends::PcapIngress;
use nfp_io::pcap::{read_pcap_bytes, write_pcap_bytes, PcapFormat, PcapRecord};
use nfp_io::Ingress;
use nfp_nf::monitor::Monitor;
use nfp_nf::NetworkFunction;
use nfp_orchestrator::{compile, CompileOptions, Registry};
use nfp_packet::ipv4::Ipv4Addr;
use nfp_packet::testutil::{indexed_payload, tcp_frame_bytes};
use nfp_policy::Policy;
use proptest::collection::vec;
use proptest::prelude::*;

/// Ethernet (14) + minimal IPv4 (20) + minimal TCP (20): any capture cut
/// strictly below this budget must admit as `Truncated`.
const HEADER_BUDGET: usize = 54;

fn sync_engine() -> SyncEngine {
    let compiled = compile(
        &Policy::from_chain(["Monitor"]),
        &Registry::paper_table2(),
        &[],
        &CompileOptions::default(),
    )
    .unwrap();
    let nfs: Vec<Box<dyn NetworkFunction>> = vec![Box::new(Monitor::new("Monitor"))];
    SyncEngine::new(compiled.program(1).unwrap(), nfs, 16)
}

fn full_frame(payload_len: usize, index: u64) -> Vec<u8> {
    tcp_frame_bytes(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 9, 0, 2),
        4321,
        443,
        &indexed_payload(payload_len, index),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192 })]

    /// Write→read is lossless for every record the writer can produce.
    #[test]
    fn arbitrary_records_round_trip_byte_for_byte(
        datas in vec(vec(any::<u8>(), 0..300usize), 0..10usize),
        extras in vec(0u32..64, 10),
        // Bounded so whole seconds fit the header's u32 (pcap's own
        // 2106 limit), exercising multi-second timestamps regardless.
        stamps in vec(0u64..4_000_000_000_000_000_000, 10),
        nanos in any::<bool>(),
        swapped in any::<bool>(),
        snaplen in 40u32..2048,
    ) {
        let fmt = PcapFormat { nanos, swapped, snaplen };
        let records: Vec<PcapRecord> = datas
            .iter()
            .zip(&extras)
            .zip(&stamps)
            .map(|((data, extra), ts)| PcapRecord {
                ts_ns: *ts,
                // `orig_len ≥ incl_len`: `extra > 0` models a capture
                // that was already snaplen-cut upstream.
                orig_len: data.len() as u32 + extra,
                data: data.clone(),
            })
            .collect();
        let bytes = write_pcap_bytes(&records, fmt);
        let got = read_pcap_bytes(&bytes).unwrap();

        // What the writer commits to disk: frames cut to the snaplen
        // (orig_len untouched), timestamps at the format's resolution.
        let expected: Vec<PcapRecord> = records
            .iter()
            .map(|r| PcapRecord {
                ts_ns: if nanos { r.ts_ns } else { r.ts_ns - r.ts_ns % 1_000 },
                orig_len: r.orig_len,
                data: r.data[..r.data.len().min(snaplen as usize)].to_vec(),
            })
            .collect();
        prop_assert_eq!(&got, &expected);
        for (g, r) in got.iter().zip(&records) {
            prop_assert_eq!(
                g.truncated(),
                r.orig_len as usize > g.data.len(),
                "truncation flag must mirror incl_len < orig_len"
            );
        }

        // A second pass through the codec is exactly stable.
        prop_assert_eq!(write_pcap_bytes(&got, fmt), bytes);
    }

    /// Header-budget cuts are `AdmitError::Truncated`; every other cut
    /// admits or rejects cleanly. Nothing panics, everything accounts.
    #[test]
    fn snaplen_cut_records_admit_as_truncated_never_panic(
        payload_len in 0usize..160,
        cut_frac in 0.0f64..1.0,
        index in any::<u64>(),
    ) {
        let frame = full_frame(payload_len, index);
        let cut = ((frame.len() as f64 * cut_frac) as usize).min(frame.len() - 1);
        let rec = PcapRecord {
            ts_ns: 1_000,
            orig_len: frame.len() as u32,
            data: frame[..cut].to_vec(),
        };
        prop_assert!(rec.truncated());

        // Through the codec and the replay ingress: the cut bytes come
        // back verbatim and the record stays flagged.
        let bytes = write_pcap_bytes(&[rec], PcapFormat::default());
        let mut ingress = PcapIngress::from_bytes(bytes).unwrap();
        let burst = ingress.next_burst(4).unwrap().unwrap();
        prop_assert_eq!(burst.len(), 1);
        prop_assert_eq!(burst[0].data(), &frame[..cut]);

        // Through a live classifier: below the header budget the cut is
        // a deterministic `Truncated` reject; anywhere else it must
        // resolve without panicking and account as exactly one packet.
        let mut engine = sync_engine();
        let outcome = engine.process(burst[0].clone());
        match outcome {
            Err(AdmitError::Truncated) => {}
            Err(other) => prop_assert!(
                cut >= HEADER_BUDGET,
                "header-budget cut at {cut} must be Truncated, got {other:?}"
            ),
            Ok(ProcessOutcome::Delivered(out)) => {
                prop_assert!(cut >= HEADER_BUDGET);
                prop_assert_eq!(out.data().len(), cut);
                // The dataplane re-finalizes the L4 checksum over what it
                // actually carried (bytes 50..52 of this minimal frame);
                // every other byte must come through verbatim.
                prop_assert_eq!(&out.data()[..50], &frame[..50]);
                prop_assert_eq!(&out.data()[52..], &frame[52..cut]);
            }
            Ok(ProcessOutcome::Dropped) => prop_assert!(cut >= HEADER_BUDGET),
        }
        let stats = engine.stats();
        if cut < HEADER_BUDGET {
            prop_assert_eq!(stats.drop_admit_malformed, 1);
        }
        prop_assert_eq!(engine.pool_in_use(), 0, "no leaked references");
    }

    /// Mid-record file cuts (a capture whose tail was lost) surface as a
    /// clean `Format` error from the reader — records before the cut are
    /// still recovered, and nothing panics.
    #[test]
    fn mid_record_file_cuts_error_cleanly(
        n in 1usize..6,
        chop in 1usize..40,
    ) {
        let records: Vec<PcapRecord> = (0..n)
            .map(|i| PcapRecord::full(i as u64 * 1_000, full_frame(24, i as u64)))
            .collect();
        let full = write_pcap_bytes(&records, PcapFormat::default());
        let cut = full.len() - chop.min(full.len() - 25);
        let mut rd = nfp_io::PcapReader::new(std::io::Cursor::new(full[..cut].to_vec())).unwrap();
        let mut recovered = 0usize;
        let err = loop {
            match rd.next_record() {
                Ok(Some(rec)) => {
                    prop_assert_eq!(&rec, &records[recovered]);
                    recovered += 1;
                }
                Ok(None) => break None,
                Err(e) => break Some(e),
            }
        };
        prop_assert!(recovered < n, "a chopped file cannot yield every record");
        prop_assert!(err.is_some(), "a mid-record cut is an error, not EOF");
    }
}
