//! Property tests for the orchestrator: Algorithm 1 invariants over random
//! action profiles, and compiler soundness over random policies built from
//! random registries.

use nfp_orchestrator::graph::Segment;
use nfp_orchestrator::tables::generate;
use nfp_orchestrator::{
    compile, identify, Action, ActionProfile, CompileError, CompileOptions, DependencyTable,
    IdentifyOptions, Parallelism, Registry,
};
use nfp_packet::FieldId;
use nfp_policy::{Policy, Rule};
use proptest::prelude::*;

fn action_strategy() -> impl Strategy<Value = Action> {
    let field = proptest::sample::select(FieldId::ALL.to_vec());
    prop_oneof![
        field.clone().prop_map(Action::read),
        field.prop_map(Action::write),
        Just(Action::add_rm()),
        Just(Action::drop()),
    ]
}

fn profile_strategy(name: &'static str) -> impl Strategy<Value = ActionProfile> {
    proptest::collection::vec(action_strategy(), 0..8).prop_map(move |actions| {
        let mut p = ActionProfile::new(name);
        for a in actions {
            p.push(a);
        }
        if p.has_add_rm() {
            p.add_rm_header = Some(nfp_orchestrator::HeaderKind::AuthHeader);
        }
        p
    })
}

proptest! {
    #[test]
    fn algorithm1_is_deterministic_and_consistent(
        p1 in profile_strategy("A"),
        p2 in profile_strategy("B"),
    ) {
        let dt = DependencyTable::paper_table3();
        let a = identify(&p1, &p2, &dt, IdentifyOptions::default());
        let b = identify(&p1, &p2, &dt, IdentifyOptions::default());
        prop_assert_eq!(a.clone(), b);
        // Verdict classification is consistent with fields.
        match a.verdict() {
            Parallelism::NotParallelizable => prop_assert!(!a.parallelizable),
            Parallelism::ParallelizableNoCopy => {
                prop_assert!(a.parallelizable && a.conflicting_actions.is_empty());
            }
            Parallelism::ParallelizableWithCopy => {
                prop_assert!(a.parallelizable && !a.conflicting_actions.is_empty());
            }
        }
        // Conflicting actions only arise from pairs the two NFs possess.
        for (x, y) in &a.conflicting_actions {
            prop_assert!(p1.actions.contains(x));
            prop_assert!(p2.actions.contains(y));
        }
    }

    #[test]
    fn op1_never_reduces_copies_needed(
        p1 in profile_strategy("A"),
        p2 in profile_strategy("B"),
    ) {
        let dt = DependencyTable::paper_table3();
        let on = identify(&p1, &p2, &dt, IdentifyOptions { dirty_memory_reusing: true });
        let off = identify(&p1, &p2, &dt, IdentifyOptions { dirty_memory_reusing: false });
        prop_assert_eq!(on.parallelizable, off.parallelizable);
        if on.parallelizable {
            prop_assert!(on.conflicting_actions.len() <= off.conflicting_actions.len());
        }
    }

    #[test]
    fn read_only_pairs_always_share_copyless(
        fields1 in proptest::collection::vec(proptest::sample::select(FieldId::ALL.to_vec()), 0..6),
        fields2 in proptest::collection::vec(proptest::sample::select(FieldId::ALL.to_vec()), 0..6),
    ) {
        let p1 = ActionProfile::new("R1").reads(fields1);
        let p2 = ActionProfile::new("R2").reads(fields2);
        let dt = DependencyTable::paper_table3();
        let a = identify(&p1, &p2, &dt, IdentifyOptions::default());
        prop_assert_eq!(a.verdict(), Parallelism::ParallelizableNoCopy);
    }

    #[test]
    fn compiler_is_sound_over_random_registries(
        profiles in proptest::collection::vec(
            proptest::collection::vec(action_strategy(), 0..6),
            2..6
        ),
        force_seq in any::<bool>(),
    ) {
        let mut registry = Registry::new();
        let names: Vec<String> = (0..profiles.len()).map(|i| format!("NF{i}")).collect();
        for (name, actions) in names.iter().zip(&profiles) {
            let mut p = ActionProfile::new(name.clone());
            for a in actions {
                p.push(*a);
            }
            if p.has_add_rm() {
                p.add_rm_header = Some(nfp_orchestrator::HeaderKind::AuthHeader);
            }
            registry.register(p);
        }
        let policy = Policy::from_chain(names.iter().map(String::as_str));
        let opts = CompileOptions {
            force_sequential: force_seq,
            ..CompileOptions::default()
        };
        match compile(&policy, &registry, &[], &opts) {
            Ok(compiled) => {
                let g = &compiled.graph;
                prop_assert_eq!(g.validate(), Ok(()));
                prop_assert_eq!(g.nf_count(), names.len());
                if force_seq {
                    prop_assert_eq!(g.equivalent_chain_length(), names.len());
                    prop_assert_eq!(g.copies_per_packet(), 0);
                }
                // Table generation is total over valid graphs, and every
                // parallel segment gets a merge spec with matching count.
                let t = generate(g, 3);
                for (i, seg) in g.segments.iter().enumerate() {
                    if let Segment::Parallel(grp) = seg {
                        let spec = t.merge_spec_for(i).expect("spec per parallel segment");
                        prop_assert_eq!(spec.total_count, grp.expected_arrivals());
                        prop_assert_eq!(spec.members.len(), grp.degree());
                    }
                }
            }
            Err(CompileError::TooManyVersions { .. }) => {
                // Legal outcome for extreme profiles; anything else is not.
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    #[test]
    fn priority_policies_compile_or_fail_gracefully(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..5),
    ) {
        let mut registry = Registry::new();
        for i in 0..4 {
            registry.register(
                ActionProfile::new(format!("P{i}"))
                    .reads([FieldId::Sip, FieldId::Dport])
                    .drops(),
            );
        }
        let rules: Vec<Rule> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| Rule::priority(format!("P{a}"), format!("P{b}")))
            .collect();
        if rules.is_empty() {
            return Ok(());
        }
        let policy = Policy::from_rules(rules);
        match compile(&policy, &registry, &[], &CompileOptions::default()) {
            Ok(c) => prop_assert_eq!(c.graph.validate(), Ok(())),
            Err(CompileError::PolicyConflicts(_)) | Err(CompileError::DependencyCycle) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
        }
    }
}
