//! The built-in NF action table — paper Table 2 — and the profile registry.
//!
//! "NFP orchestrator maintains an NF action table (AT, i.e. Table 2)…
//! To accommodate a new NF into NFP, network operators could generate an
//! action profile of the NF manually or with the analysis tool provided by
//! NFP, and register it into Table 2." (§4.3/§5.4)

use crate::action::ActionProfile;
use nfp_packet::FieldId;
use std::collections::HashMap;

/// A Table 2 row: an NF action profile plus its share of enterprise
/// deployments (where the paper reports one).
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// The action profile.
    pub profile: ActionProfile,
    /// Deployment share in enterprise networks, as a fraction (0.26 for
    /// "26%"); `None` for rows the paper lists without a percentage.
    pub deployment_share: Option<f64>,
}

/// The NF action table (AT): profiles keyed by NF type name.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: HashMap<String, TableEntry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's Table 2, transcribed row by row.
    ///
    /// Columns are SIP/DIP/SPORT/DPORT/Payload (R, W or R/W), Add/Rm and
    /// Drop. Two rows print ambiguously in the paper (Gateway's and
    /// Caching's `R` cells are not column-aligned in the text); we adopt
    /// the most semantically sensible reading and note it per row.
    pub fn paper_table2() -> Self {
        let mut r = Self::new();
        // Firewall (iptables, 26%): reads the 4-tuple, may drop.
        r.register_with_share(
            ActionProfile::new("Firewall")
                .reads([FieldId::Sip, FieldId::Dip, FieldId::Sport, FieldId::Dport])
                .drops(),
            Some(0.26),
        );
        // NIDS (NIDS cluster, 20%): reads the 4-tuple and the payload.
        // Stateful: per-flow stream/inspection context.
        r.register_with_share(
            ActionProfile::new("NIDS")
                .reads([
                    FieldId::Sip,
                    FieldId::Dip,
                    FieldId::Sport,
                    FieldId::Dport,
                    FieldId::Payload,
                ])
                .stateful(),
            Some(0.20),
        );
        // Gateway (Cisco MGX, 19%): two `R` cells — read SIP and DIP.
        r.register_with_share(
            ActionProfile::new("Gateway").reads([FieldId::Sip, FieldId::Dip]),
            Some(0.19),
        );
        // Load Balance (F5/A10, 10%): R/W on SIP and DIP, reads ports.
        // Stateful: flow → backend pins.
        r.register_with_share(
            ActionProfile::new("LoadBalancer")
                .reads_writes([FieldId::Sip, FieldId::Dip])
                .reads([FieldId::Sport, FieldId::Dport])
                .stateful(),
            Some(0.10),
        );
        // Caching (Nginx, 10%): three `R` cells — read DIP, DPORT and the
        // payload (the request URL).
        r.register_with_share(
            ActionProfile::new("Caching").reads([FieldId::Dip, FieldId::Dport, FieldId::Payload]),
            Some(0.10),
        );
        // VPN (OpenVPN, 7%): reads SIP/DIP, R/W payload (encryption),
        // adds/removes headers (AH encapsulation). Never drops, but must
        // fail closed anyway: bypassing a failed VPN would forward
        // plaintext onto the encrypted path.
        r.register_with_share(
            ActionProfile::new("VPN")
                .reads([FieldId::Sip, FieldId::Dip])
                .reads_writes([FieldId::Payload])
                .adds_removes()
                .fail_closed(),
            Some(0.07),
        );
        // NAT (iptables): R/W on the full 4-tuple. Stateful: flow →
        // external-port bindings.
        r.register(
            ActionProfile::new("NAT")
                .reads_writes([FieldId::Sip, FieldId::Dip, FieldId::Sport, FieldId::Dport])
                .stateful(),
        );
        // Proxy (Squid): R/W on SIP and DIP.
        r.register(ActionProfile::new("Proxy").reads_writes([FieldId::Sip, FieldId::Dip]));
        // Compression (Cisco IOS): R/W on the payload.
        r.register(ActionProfile::new("Compression").reads_writes([FieldId::Payload]));
        // Traffic Shaper (Linux tc): delays packets, touches nothing.
        r.register(ActionProfile::new("TrafficShaper"));
        // Monitor (NetFlow): reads the 4-tuple. Stateful: per-flow
        // counters.
        r.register(
            ActionProfile::new("Monitor")
                .reads([FieldId::Sip, FieldId::Dip, FieldId::Sport, FieldId::Dport])
                .stateful(),
        );
        r
    }

    /// Register (or replace) a profile without deployment share.
    pub fn register(&mut self, profile: ActionProfile) {
        self.register_with_share(profile, None);
    }

    /// Register (or replace) a profile with a deployment share.
    pub fn register_with_share(&mut self, profile: ActionProfile, share: Option<f64>) {
        self.entries.insert(
            profile.nf_type.clone(),
            TableEntry {
                profile,
                deployment_share: share,
            },
        );
    }

    /// Look up a profile by NF type name.
    pub fn get(&self, nf_type: &str) -> Option<&ActionProfile> {
        self.entries.get(nf_type).map(|e| &e.profile)
    }

    /// Look up the full table entry.
    pub fn entry(&self, nf_type: &str) -> Option<&TableEntry> {
        self.entries.get(nf_type)
    }

    /// All registered NF type names, sorted for determinism.
    pub fn nf_types(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Number of registered profiles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no profile is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_all_eleven_rows() {
        let r = Registry::paper_table2();
        assert_eq!(r.len(), 11);
        for nf in [
            "Firewall",
            "NIDS",
            "Gateway",
            "LoadBalancer",
            "Caching",
            "VPN",
            "NAT",
            "Proxy",
            "Compression",
            "TrafficShaper",
            "Monitor",
        ] {
            assert!(r.get(nf).is_some(), "{nf} missing");
        }
    }

    #[test]
    fn deployment_shares_match_paper() {
        let r = Registry::paper_table2();
        let share = |nf: &str| r.entry(nf).unwrap().deployment_share;
        assert_eq!(share("Firewall"), Some(0.26));
        assert_eq!(share("NIDS"), Some(0.20));
        assert_eq!(share("Gateway"), Some(0.19));
        assert_eq!(share("LoadBalancer"), Some(0.10));
        assert_eq!(share("Caching"), Some(0.10));
        assert_eq!(share("VPN"), Some(0.07));
        assert_eq!(share("NAT"), None);
        assert_eq!(share("Monitor"), None);
    }

    #[test]
    fn profile_semantics_sanity() {
        let r = Registry::paper_table2();
        assert!(r.get("Firewall").unwrap().has_drop());
        assert!(r.get("Firewall").unwrap().is_read_only());
        assert!(r.get("Monitor").unwrap().is_read_only());
        assert!(r.get("VPN").unwrap().has_add_rm());
        assert!(!r.get("NAT").unwrap().is_read_only());
        assert!(r.get("TrafficShaper").unwrap().actions.is_empty());
        // "only few NFs (7%) modify packet payloads" — VPN and Compression.
        let payload_writers: Vec<_> = r
            .nf_types()
            .into_iter()
            .filter(|nf| r.get(nf).unwrap().write_mask().contains(FieldId::Payload))
            .collect();
        assert_eq!(payload_writers, vec!["Compression", "VPN"]);
    }

    #[test]
    fn failure_policies_split_enforcing_from_best_effort() {
        use crate::action::FailurePolicy::*;
        let r = Registry::paper_table2();
        let policy = |nf: &str| r.get(nf).unwrap().failure_policy();
        // Enforcing NFs fail closed: the firewall by drop capability, the
        // VPN by explicit pin (plaintext must not bypass it).
        assert_eq!(policy("Firewall"), FailClosed);
        assert_eq!(policy("VPN"), FailClosed);
        // Best-effort NFs fail open: traffic outlives their side effects.
        for nf in ["Monitor", "Compression", "LoadBalancer", "NAT", "NIDS"] {
            assert_eq!(policy(nf), FailOpen, "{nf}");
        }
        // An operator hardening the passive NIDS into an inline IDS (the
        // pattern the examples use) flips it closed via the heuristic.
        let ids = r.get("NIDS").unwrap().clone().drops();
        assert_eq!(ids.failure_policy(), FailClosed);
    }

    #[test]
    fn statefulness_matches_nf_semantics() {
        let r = Registry::paper_table2();
        let stateful = |nf: &str| r.get(nf).unwrap().per_flow_state;
        for nf in ["NAT", "LoadBalancer", "Monitor", "NIDS"] {
            assert!(stateful(nf), "{nf} keeps per-flow state");
        }
        for nf in ["Firewall", "Gateway", "VPN", "Compression", "TrafficShaper"] {
            assert!(!stateful(nf), "{nf} is stateless");
        }
    }

    #[test]
    fn register_replaces() {
        let mut r = Registry::new();
        r.register(ActionProfile::new("X").reads([FieldId::Sip]));
        r.register(ActionProfile::new("X").drops());
        assert!(r.get("X").unwrap().has_drop());
        assert!(r.get("X").unwrap().read_mask().is_empty());
        assert_eq!(r.len(), 1);
    }
}
