//! The service-graph compiler — paper §4.4 (Figure 2 workflow).
//!
//! Three steps:
//!
//! 1. **Transform** policies into intermediate representations: `Position`
//!    rules pin NFs; `Order`/`Priority` rules run Algorithm 1 and become
//!    directed pair relations (sequential edge, or parallel pair with
//!    conflicting actions). A parallelizable `Order` rule *is converted
//!    into a Priority*: "the NF with the back order is assigned a higher
//!    priority".
//! 2. **Compile** the relations into micrographs: connected components of
//!    the relation graph, arranged into *waves* (the generalization of the
//!    paper's Single-NF / Tree / Plain-Parallelism micrograph structures —
//!    a Tree is a one-node wave followed by a parallel wave).
//! 3. **Merge** micrographs into the final graph: pinned NFs go to the
//!    head/tail; mutually independent micrographs are placed in parallel;
//!    any residual inter-micrograph dependency is reported as a warning
//!    and resolved by sequential placement in policy-mention order
//!    ("network operators will be informed to further regulate execution
//!    priority").
//!
//! Within every parallel wave the compiler also runs the paper's resource
//! optimizations: members whose conflicting-action set against the current
//! v1 sharers is empty *share the original packet* (OP#1 Dirty Memory
//! Reusing makes this common), and members that do need a copy get a
//! header-only copy unless they touch the payload (OP#2).

use crate::action::ActionProfile;
use crate::alg1::{identify, identify_in, IdentifyOptions, PairAnalysis, PairContext};
use crate::deps::DependencyTable;
use crate::graph::{
    CopyKind, GraphNode, Member, MergeOp, NodeId, ParallelGroup, Segment, ServiceGraph,
};
use crate::table2::Registry;
use nfp_packet::meta::{VERSION_MAX, VERSION_ORIGINAL};
use nfp_packet::FieldId;
use nfp_policy::{check_conflicts, Conflict, NfName, Policy, PositionAnchor, Rule};
use std::collections::HashMap;

/// Compiler options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Options forwarded to Algorithm 1 (OP#1 toggle).
    pub identify: IdentifyOptions,
    /// When true, skip all parallelization and emit a purely sequential
    /// chain (the paper's baseline mode; also used by benches).
    pub force_sequential: bool,
}

/// Fatal compilation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// An NF appears in the policy (or free list) but has no registered
    /// action profile.
    UnknownNf(NfName),
    /// The policy is self-contradictory (see `nfp-policy`'s conflict
    /// detector).
    PolicyConflicts(Vec<Conflict>),
    /// A parallel wave would need more copy versions than the 4-bit
    /// metadata version field can express.
    TooManyVersions {
        /// Versions demanded.
        needed: usize,
    },
    /// The policy mentions no NFs at all.
    EmptyPolicy,
    /// Sequential constraints (Order rules plus priority fallbacks) form a
    /// cycle the conflict checker could not see (e.g. one introduced by an
    /// unparallelizable Priority pair).
    DependencyCycle,
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::UnknownNf(nf) => write!(f, "no action profile registered for `{nf}`"),
            CompileError::PolicyConflicts(cs) => {
                write!(f, "policy conflicts:")?;
                for c in cs {
                    write!(f, " [{c}]")?;
                }
                Ok(())
            }
            CompileError::TooManyVersions { needed } => write!(
                f,
                "parallel group needs {needed} copy versions; metadata allows {VERSION_MAX}"
            ),
            CompileError::EmptyPolicy => write!(f, "policy mentions no NFs"),
            CompileError::DependencyCycle => {
                write!(f, "sequential constraints form a dependency cycle")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Non-fatal compiler diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileWarning {
    /// A `Priority` pair turned out not to be parallelizable; the pair was
    /// chained sequentially (low-priority NF first, so the high-priority
    /// NF's result still wins by coming last).
    PriorityPairSequential {
        /// High-priority NF.
        high: NfName,
        /// Low-priority NF.
        low: NfName,
    },
    /// Two micrographs depend on each other; they were placed sequentially
    /// in policy-mention order, and the operator should regulate their
    /// execution priority explicitly.
    MicrographDependency {
        /// An NF identifying the first micrograph.
        a: NfName,
        /// An NF identifying the second micrograph.
        b: NfName,
    },
    /// An `Order` rule involving a `Position`-pinned NF was redundant (or
    /// unsatisfiable) and was ignored.
    OrderWithPinnedNf {
        /// The pinned NF.
        pinned: NfName,
        /// The other NF in the rule.
        other: NfName,
        /// True when the rule was consistent with the pin (redundant),
        /// false when it contradicted the pin (unsatisfiable).
        consistent: bool,
    },
    /// Several NFs were pinned to the same anchor; they were chained in
    /// policy-mention order.
    AmbiguousAnchorResolved {
        /// The contested anchor.
        anchor: PositionAnchor,
    },
}

/// Successful compilation result.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The optimized service graph.
    pub graph: ServiceGraph,
    /// Diagnostics for the operator.
    pub warnings: Vec<CompileWarning>,
}

/// Directed relation between two NFs, derived from one rule.
#[derive(Debug, Clone)]
enum Relation {
    /// `lo` must complete before `hi` starts.
    Seq,
    /// May run in parallel; `hi` has the higher conflict priority; `ca` is
    /// Algorithm 1's conflicting-action list for the `lo → hi` direction.
    Par { analysis: PairAnalysis },
}

/// Compile `policy` (plus `free_nfs`, deployed NFs the policy does not
/// mention) against the action-profile `registry`.
pub fn compile(
    policy: &Policy,
    registry: &Registry,
    free_nfs: &[NfName],
    opts: &CompileOptions,
) -> Result<Compiled, CompileError> {
    Compiler::new(policy, registry, free_nfs, opts)?.run()
}

struct Compiler<'a> {
    registry: &'a Registry,
    opts: &'a CompileOptions,
    dt: DependencyTable,
    /// NF instances in mention order; index = NodeId.
    nodes: Vec<GraphNode>,
    ids: HashMap<NfName, NodeId>,
    /// Directed relations keyed by (lo, hi) node ids.
    relations: HashMap<(NodeId, NodeId), Relation>,
    pinned_first: Vec<NodeId>,
    pinned_last: Vec<NodeId>,
    warnings: Vec<CompileWarning>,
    /// Cache of Algorithm 1 runs keyed by directed node pair and context.
    analysis_cache: HashMap<(NodeId, NodeId, PairContext), PairAnalysis>,
}

impl<'a> Compiler<'a> {
    fn new(
        policy: &Policy,
        registry: &'a Registry,
        free_nfs: &[NfName],
        opts: &'a CompileOptions,
    ) -> Result<Self, CompileError> {
        // Fatal conflicts abort; ambiguous anchors degrade to warnings.
        let conflicts = check_conflicts(policy);
        let mut warnings = Vec::new();
        let fatal: Vec<Conflict> = conflicts
            .into_iter()
            .filter(|c| match c {
                Conflict::AmbiguousAnchor { anchor, .. } => {
                    warnings.push(CompileWarning::AmbiguousAnchorResolved { anchor: *anchor });
                    false
                }
                _ => true,
            })
            .collect();
        if !fatal.is_empty() {
            return Err(CompileError::PolicyConflicts(fatal));
        }

        let mut compiler = Self {
            registry,
            opts,
            dt: DependencyTable::paper_table3(),
            nodes: Vec::new(),
            ids: HashMap::new(),
            relations: HashMap::new(),
            pinned_first: Vec::new(),
            pinned_last: Vec::new(),
            warnings,
            analysis_cache: HashMap::new(),
        };
        for nf in policy.mentioned_nfs() {
            compiler.intern(&nf)?;
        }
        for nf in free_nfs {
            compiler.intern(nf)?;
        }
        if compiler.nodes.is_empty() {
            return Err(CompileError::EmptyPolicy);
        }
        compiler.transform(policy)?;
        Ok(compiler)
    }

    fn intern(&mut self, nf: &NfName) -> Result<NodeId, CompileError> {
        if let Some(&id) = self.ids.get(nf) {
            return Ok(id);
        }
        let profile = self
            .registry
            .get(nf.as_str())
            .cloned()
            .ok_or_else(|| CompileError::UnknownNf(nf.clone()))?;
        let id = self.nodes.len();
        self.nodes.push(GraphNode {
            name: nf.clone(),
            profile,
        });
        self.ids.insert(nf.clone(), id);
        Ok(id)
    }

    fn analyze(&mut self, lo: NodeId, hi: NodeId) -> PairAnalysis {
        self.analyze_in(lo, hi, PairContext::Order)
    }

    fn analyze_in(&mut self, lo: NodeId, hi: NodeId, ctx: PairContext) -> PairAnalysis {
        if let Some(a) = self.analysis_cache.get(&(lo, hi, ctx)) {
            return a.clone();
        }
        let a = identify_in(
            &self.nodes[lo].profile,
            &self.nodes[hi].profile,
            &self.dt,
            self.opts.identify,
            ctx,
        );
        self.analysis_cache.insert((lo, hi, ctx), a.clone());
        a
    }

    /// Can `lo` run in parallel with `hi` (lo ordered first), honouring any
    /// explicit relation between them?
    fn pair_parallelizable(&mut self, lo: NodeId, hi: NodeId) -> bool {
        match self.relations.get(&(lo, hi)) {
            Some(Relation::Par { .. }) => true,
            Some(Relation::Seq) => false,
            None => self.analyze(lo, hi).parallelizable,
        }
    }

    /// Does the `lo`/`hi` pair require a packet copy when parallelized?
    fn pair_needs_copy(&mut self, lo: NodeId, hi: NodeId) -> bool {
        match self.relations.get(&(lo, hi)) {
            Some(Relation::Par { analysis }) => analysis.needs_copy(),
            Some(Relation::Seq) => false,
            None => self.analyze(lo, hi).needs_copy(),
        }
    }

    /// Step 1: rules → intermediate representations.
    fn transform(&mut self, policy: &Policy) -> Result<(), CompileError> {
        for rule in policy.rules() {
            match rule {
                Rule::Position { nf, anchor } => {
                    let id = self.ids[nf];
                    let list = match anchor {
                        PositionAnchor::First => &mut self.pinned_first,
                        PositionAnchor::Last => &mut self.pinned_last,
                    };
                    if !list.contains(&id) {
                        list.push(id);
                    }
                }
                Rule::Order { before, after } => {
                    let (lo, hi) = (self.ids[before], self.ids[after]);
                    if self.handle_pinned_edge(lo, hi) {
                        continue;
                    }
                    let analysis = if self.opts.force_sequential {
                        PairAnalysis {
                            parallelizable: false,
                            conflicting_actions: Vec::new(),
                            drop_conflict: false,
                        }
                    } else {
                        self.analyze(lo, hi)
                    };
                    let rel = if analysis.parallelizable {
                        // Order → Priority conversion: back NF wins.
                        Relation::Par { analysis }
                    } else {
                        Relation::Seq
                    };
                    self.relations.entry((lo, hi)).or_insert(rel);
                }
                Rule::Priority { high, low } => {
                    let (lo, hi) = (self.ids[low], self.ids[high]);
                    if self.handle_pinned_edge(lo, hi) {
                        continue;
                    }
                    let analysis = if self.opts.force_sequential {
                        PairAnalysis {
                            parallelizable: false,
                            conflicting_actions: Vec::new(),
                            drop_conflict: false,
                        }
                    } else {
                        self.analyze_in(lo, hi, PairContext::Priority)
                    };
                    if analysis.parallelizable {
                        self.relations
                            .entry((lo, hi))
                            .or_insert(Relation::Par { analysis });
                    } else {
                        if !self.opts.force_sequential {
                            self.warnings.push(CompileWarning::PriorityPairSequential {
                                high: self.nodes[hi].name.clone(),
                                low: self.nodes[lo].name.clone(),
                            });
                        }
                        // Low first, so the high-priority result still wins.
                        self.relations.entry((lo, hi)).or_insert(Relation::Seq);
                    }
                }
            }
        }
        Ok(())
    }

    /// Edges that touch a pinned NF are resolved by the pin itself; returns
    /// true when the edge was consumed.
    fn handle_pinned_edge(&mut self, lo: NodeId, hi: NodeId) -> bool {
        let lo_first = self.pinned_first.contains(&lo);
        let hi_first = self.pinned_first.contains(&hi);
        let lo_last = self.pinned_last.contains(&lo);
        let hi_last = self.pinned_last.contains(&hi);
        if !(lo_first || hi_first || lo_last || hi_last) {
            return false;
        }
        // Consistent cases: lo pinned first, or hi pinned last.
        let consistent = (lo_first || hi_last) && !(hi_first || lo_last);
        let (pinned, other) = if lo_first || lo_last {
            (lo, hi)
        } else {
            (hi, lo)
        };
        self.warnings.push(CompileWarning::OrderWithPinnedNf {
            pinned: self.nodes[pinned].name.clone(),
            other: self.nodes[other].name.clone(),
            consistent,
        });
        true
    }

    fn run(mut self) -> Result<Compiled, CompileError> {
        // Step 2: micrographs = connected components over all relations,
        // excluding pinned NFs.
        let pinned: Vec<bool> = (0..self.nodes.len())
            .map(|i| self.pinned_first.contains(&i) || self.pinned_last.contains(&i))
            .collect();
        let components = self.components(&pinned);
        let mut micrographs: Vec<Micrograph> = Vec::new();
        for comp in components {
            micrographs.push(self.build_micrograph(comp)?);
        }
        // Step 3: merge micrographs into the final segment list.
        let mut segments: Vec<Segment> = Vec::new();
        for &id in &self.pinned_first.clone() {
            segments.push(Segment::Sequential(id));
        }
        segments.extend(self.merge_micrographs(micrographs)?);
        for &id in &self.pinned_last.clone() {
            segments.push(Segment::Sequential(id));
        }
        let graph = ServiceGraph {
            nodes: self.nodes,
            segments,
        };
        debug_assert_eq!(graph.validate(), Ok(()));
        Ok(Compiled {
            graph,
            warnings: self.warnings,
        })
    }

    /// Connected components (union-find) over the relation graph.
    fn components(&self, pinned: &[bool]) -> Vec<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for &(a, b) in self.relations.keys() {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
        for (i, &pin) in pinned.iter().enumerate().take(n) {
            if pin {
                continue;
            }
            groups.entry(find(&mut parent, i)).or_default().push(i);
        }
        // Mention order keeps compilation deterministic.
        let mut comps: Vec<Vec<NodeId>> = groups.into_values().collect();
        for c in &mut comps {
            c.sort_unstable();
        }
        comps.sort_by_key(|c| c[0]);
        comps
    }

    /// Build one micrograph.
    ///
    /// Nodes are assigned *levels*: sequential edges force `level(hi) >
    /// level(lo)`, and parallel pairs pull both NFs to the same level (that
    /// is what keeps `Order(Monitor, before, FW)` together as one group in
    /// the north-south chain instead of scattering across waves). Each
    /// level then becomes one or more parallel waves after pairwise
    /// Algorithm-1 vetting, generalizing the paper's Single-NF / Tree /
    /// Plain-Parallelism micrograph taxonomy.
    fn build_micrograph(&mut self, comp: Vec<NodeId>) -> Result<Micrograph, CompileError> {
        if comp.len() == 1 {
            return Ok(Micrograph {
                segments: vec![Segment::Sequential(comp[0])],
                nodes: comp,
            });
        }
        let in_comp: std::collections::HashSet<NodeId> = comp.iter().copied().collect();
        let seq_edges: Vec<(NodeId, NodeId)> = self
            .relations
            .iter()
            .filter(|((lo, hi), rel)| {
                matches!(rel, Relation::Seq) && in_comp.contains(lo) && in_comp.contains(hi)
            })
            .map(|(&k, _)| k)
            .collect();
        let par_edges: Vec<(NodeId, NodeId)> = self
            .relations
            .iter()
            .filter(|((lo, hi), rel)| {
                matches!(rel, Relation::Par { .. }) && in_comp.contains(lo) && in_comp.contains(hi)
            })
            .map(|(&k, _)| k)
            .collect();

        // Sequential reachability (small components; BFS per node).
        let mut succs: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &(lo, hi) in &seq_edges {
            succs.entry(lo).or_default().push(hi);
        }
        let reach = |from: NodeId, to: NodeId| -> bool {
            let mut stack = vec![from];
            let mut seen = std::collections::HashSet::new();
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if let Some(ss) = succs.get(&n) {
                    for &s in ss {
                        if seen.insert(s) {
                            stack.push(s);
                        }
                    }
                }
            }
            false
        };
        // Parallel pairs can only co-level when no sequential path orders
        // them transitively.
        let colevel_pairs: Vec<(NodeId, NodeId)> = par_edges
            .iter()
            .copied()
            .filter(|&(a, b)| !reach(a, b) && !reach(b, a))
            .collect();

        // Fixpoint leveling, with an iteration guard doubling as cycle
        // detection for cycles introduced by priority fallbacks.
        let mut level: HashMap<NodeId, usize> = comp.iter().map(|&n| (n, 0)).collect();
        let bound = comp.len() * comp.len() + 2;
        let mut iterations = 0usize;
        loop {
            let mut changed = false;
            for &(lo, hi) in &seq_edges {
                if level[&hi] < level[&lo] + 1 {
                    level.insert(hi, level[&lo] + 1);
                    changed = true;
                }
            }
            for &(a, b) in &colevel_pairs {
                let l = level[&a].max(level[&b]);
                if level[&a] != l {
                    level.insert(a, l);
                    changed = true;
                }
                if level[&b] != l {
                    level.insert(b, l);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            iterations += 1;
            if iterations > bound || level.values().any(|&l| l > comp.len()) {
                return Err(CompileError::DependencyCycle);
            }
        }

        // Group by level, ascending; tiebreak mention order inside levels.
        let mut levels: Vec<(usize, Vec<NodeId>)> = {
            let mut by_level: HashMap<usize, Vec<NodeId>> = HashMap::new();
            for &n in &comp {
                by_level.entry(level[&n]).or_default().push(n);
            }
            let mut v: Vec<_> = by_level.into_iter().collect();
            v.sort_by_key(|(l, _)| *l);
            v
        };
        let mut segments = Vec::new();
        for (_, nodes) in &mut levels {
            nodes.sort_unstable();
            let ordered = self.par_topo_order(nodes);
            for wave in self.arrange_wave(&ordered) {
                segments.push(self.emit_wave(&wave)?);
            }
        }
        Ok(Micrograph {
            segments,
            nodes: comp,
        })
    }

    /// Order a level's nodes topologically by explicit parallel-pair
    /// directions (lo before hi), tiebreaking by mention order, so
    /// `arrange_wave` never places a high-priority NF ahead of its partner.
    fn par_topo_order(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        let set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let mut indeg: HashMap<NodeId, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        let mut succs: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (&(lo, hi), rel) in &self.relations {
            if matches!(rel, Relation::Par { .. }) && set.contains(&lo) && set.contains(&hi) {
                succs.entry(lo).or_default().push(hi);
                *indeg.get_mut(&hi).unwrap() += 1;
            }
        }
        let mut ready: Vec<NodeId> = nodes.iter().copied().filter(|n| indeg[n] == 0).collect();
        ready.sort_unstable();
        let mut out = Vec::with_capacity(nodes.len());
        while let Some(n) = ready.first().copied() {
            ready.remove(0);
            out.push(n);
            if let Some(ss) = succs.get(&n) {
                for &s in ss {
                    let d = indeg.get_mut(&s).unwrap();
                    *d -= 1;
                    if *d == 0 {
                        ready.push(s);
                    }
                }
            }
            ready.sort_unstable();
        }
        if out.len() != nodes.len() {
            // Priority cycle among co-leveled nodes (already warned as a
            // policy conflict elsewhere); fall back to mention order.
            return nodes.to_vec();
        }
        out
    }

    /// Split an ordered node list into sub-waves such that, within each
    /// sub-wave, every ordered pair (by position) is parallelizable.
    /// Parallel-pair relation directions (`lo` before `hi`) are honoured;
    /// unrelated pairs take mention order, trying reversed insertion
    /// positions before splitting.
    fn arrange_wave(&mut self, ordered: &[NodeId]) -> Vec<Vec<NodeId>> {
        let mut waves: Vec<Vec<NodeId>> = Vec::new();
        'member: for &m in ordered {
            for wave in &mut waves {
                // Try every insertion position, preferring the end (append
                // keeps mention order for unrelated NFs).
                let mut positions: Vec<usize> = (0..=wave.len()).rev().collect();
                // Respect explicit Par directions: m must come after any lo
                // with (lo, m) and before any hi with (m, hi).
                positions.retain(|&pos| self.position_ok(wave, m, pos));
                for pos in positions {
                    if self.wave_accepts(wave, m, pos) {
                        wave.insert(pos, m);
                        continue 'member;
                    }
                }
            }
            waves.push(vec![m]);
        }
        waves
    }

    /// Explicit parallel-pair directions constrain m's position in `wave`.
    fn position_ok(&self, wave: &[NodeId], m: NodeId, pos: usize) -> bool {
        for (i, &x) in wave.iter().enumerate() {
            let x_before_m = i < pos;
            if self.relations.contains_key(&(x, m)) && !x_before_m {
                return false;
            }
            if self.relations.contains_key(&(m, x)) && x_before_m {
                return false;
            }
        }
        true
    }

    /// Pairwise Algorithm-1 check for inserting `m` at `pos` (explicit
    /// relations override — a Priority-forced pair counts as parallelizable
    /// even though an Order-context probe would refuse it).
    fn wave_accepts(&mut self, wave: &[NodeId], m: NodeId, pos: usize) -> bool {
        for (i, &x) in wave.iter().enumerate() {
            let (lo, hi) = if i < pos { (x, m) } else { (m, x) };
            if !self.pair_parallelizable(lo, hi) {
                return false;
            }
        }
        true
    }

    /// Emit a segment for one wave, assigning copy versions, merge ops and
    /// priorities (position in the wave = conflict priority; the paper's
    /// "back order gets higher priority").
    fn emit_wave(&mut self, wave: &[NodeId]) -> Result<Segment, CompileError> {
        if wave.len() == 1 {
            return Ok(Segment::Sequential(wave[0]));
        }
        let mut members: Vec<Member> = Vec::new();
        // Node ids currently sharing the original packet (v1).
        let mut v1_sharers: Vec<NodeId> = Vec::new();
        let mut next_version = VERSION_ORIGINAL + 1;
        for (rank, &m) in wave.iter().enumerate() {
            let profile = self.nodes[m].profile.clone();
            // Direction follows wave position: all current v1 sharers rank
            // earlier than m because we scan in order.
            let sharers = v1_sharers.clone();
            // Dirty Memory Reusing applies to fixed-width header fields; a
            // payload writer may *resize* the frame (compression), which
            // moves headers — structurally unsafe to share, so it always
            // gets its own copy when anyone else holds v1. (Add/Rm NFs are
            // caught by the conflicting-action check already.)
            let structural_writer =
                profile.write_mask().contains(FieldId::Payload) || profile.has_add_rm();
            let needs_copy = sharers.iter().any(|&s| self.pair_needs_copy(s, m))
                || (structural_writer && !sharers.is_empty());
            let mut member = Member::solo(m);
            member.priority = rank as u32;
            member.drop_capable = profile.has_drop();
            member.writes = profile.write_mask();
            if needs_copy {
                if next_version > VERSION_MAX {
                    return Err(CompileError::TooManyVersions {
                        needed: next_version as usize,
                    });
                }
                member.version = next_version;
                next_version += 1;
                let touches_payload = profile.read_mask().contains(FieldId::Payload)
                    || profile.write_mask().contains(FieldId::Payload);
                member.copy = if touches_payload {
                    CopyKind::Full
                } else {
                    CopyKind::HeaderOnly
                };
                member.merge_ops = merge_ops_for(&profile, member.version);
            } else {
                v1_sharers.push(m);
            }
            members.push(member);
        }
        Ok(Segment::Parallel(ParallelGroup { members }))
    }

    /// Step 3: merge micrographs — independent ones in parallel, dependent
    /// ones sequential with a warning.
    fn merge_micrographs(
        &mut self,
        micrographs: Vec<Micrograph>,
    ) -> Result<Vec<Segment>, CompileError> {
        if micrographs.len() <= 1 {
            return Ok(micrographs.into_iter().flat_map(|m| m.segments).collect());
        }
        // Union profile per micrograph for the pairwise dependency check.
        let unions: Vec<ActionProfile> = micrographs
            .iter()
            .map(|mg| union_profile(&self.nodes, &mg.nodes))
            .collect();
        // A micrograph can join the parallel composition only when it is a
        // simple chain and independent (no-copy both directions) of every
        // other parallel-composed micrograph.
        let mut parallel_idx: Vec<usize> = Vec::new();
        let mut sequential_idx: Vec<usize> = Vec::new();
        'outer: for i in 0..micrographs.len() {
            if !micrographs[i].is_chain() {
                sequential_idx.push(i);
                continue;
            }
            for &j in &parallel_idx {
                let fwd = identify(&unions[j], &unions[i], &self.dt, self.opts.identify);
                let back = identify(&unions[i], &unions[j], &self.dt, self.opts.identify);
                let independent = fwd.verdict() == crate::deps::Parallelism::ParallelizableNoCopy
                    && back.verdict() == crate::deps::Parallelism::ParallelizableNoCopy;
                if !independent {
                    self.warnings.push(CompileWarning::MicrographDependency {
                        a: self.nodes[micrographs[j].nodes[0]].name.clone(),
                        b: self.nodes[micrographs[i].nodes[0]].name.clone(),
                    });
                    sequential_idx.push(i);
                    continue 'outer;
                }
            }
            parallel_idx.push(i);
        }
        let mut segments = Vec::new();
        match parallel_idx.len() {
            0 => {}
            1 => segments.extend(micrographs[parallel_idx[0]].segments.clone()),
            _ => {
                let members: Vec<Member> = parallel_idx
                    .iter()
                    .enumerate()
                    .map(|(rank, &i)| {
                        let path = micrographs[i].chain_nodes();
                        let drop_capable = path.iter().any(|&n| self.nodes[n].profile.has_drop());
                        let writes = path.iter().fold(nfp_packet::FieldMask::EMPTY, |m, &n| {
                            m.union(self.nodes[n].profile.write_mask())
                        });
                        Member {
                            path,
                            version: VERSION_ORIGINAL,
                            copy: CopyKind::None,
                            merge_ops: Vec::new(),
                            priority: rank as u32,
                            drop_capable,
                            writes,
                        }
                    })
                    .collect();
                segments.push(Segment::Parallel(ParallelGroup { members }));
            }
        }
        for i in sequential_idx {
            segments.extend(micrographs[i].segments.clone());
        }
        Ok(segments)
    }
}

/// Merge operations folding `version`'s modifications into v1: one
/// `modify` per written field, plus header grafts for Add/Rm NFs.
fn merge_ops_for(profile: &ActionProfile, version: u8) -> Vec<MergeOp> {
    let mut ops: Vec<MergeOp> = profile
        .write_mask()
        .iter()
        .map(|field| MergeOp::Modify {
            field,
            from_version: version,
        })
        .collect();
    if profile.has_add_rm() {
        if let Some(header) = profile.add_rm_header {
            ops.push(MergeOp::AddHeader {
                header,
                from_version: version,
            });
        }
    }
    ops
}

fn union_profile(nodes: &[GraphNode], members: &[NodeId]) -> ActionProfile {
    let mut p = ActionProfile::new("micrograph");
    for &n in members {
        for &a in &nodes[n].profile.actions {
            p.push(a);
        }
        if p.add_rm_header.is_none() {
            p.add_rm_header = nodes[n].profile.add_rm_header;
        }
    }
    p
}

/// A compiled micrograph: its segments plus its node set.
#[derive(Debug, Clone)]
struct Micrograph {
    segments: Vec<Segment>,
    nodes: Vec<NodeId>,
}

impl Micrograph {
    /// True when every segment is sequential (a chain or single NF).
    fn is_chain(&self) -> bool {
        self.segments
            .iter()
            .all(|s| matches!(s, Segment::Sequential(_)))
    }

    /// The chain's node ids in traversal order (requires `is_chain`).
    fn chain_nodes(&self) -> Vec<NodeId> {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Sequential(n) => *n,
                Segment::Parallel(_) => unreachable!("chain_nodes on non-chain"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::Parallelism;

    fn registry() -> Registry {
        let mut r = Registry::paper_table2();
        // Instance-name aliases used by the paper's example policies. The
        // evaluated IDS (Snort-like, §6.1) can drop, unlike the read-only
        // NIDS row of Table 2 — that drop is what keeps the IDS sequential
        // in the paper's east-west graph.
        for (alias, ty) in [("FW", "Firewall"), ("LB", "LoadBalancer")] {
            let p = r.get(ty).unwrap().clone_as(alias);
            r.register(p);
        }
        let ids = r.get("NIDS").unwrap().clone_as("IDS").drops();
        r.register(ids);
        r
    }

    impl ActionProfile {
        fn clone_as(&self, name: &str) -> ActionProfile {
            let mut p = self.clone();
            p.nf_type = name.to_string();
            p
        }
    }

    fn compile_ok(policy: &Policy) -> Compiled {
        compile(policy, &registry(), &[], &CompileOptions::default()).unwrap()
    }

    #[test]
    fn north_south_chain_matches_figure_13() {
        // Order(VPN,Monitor), Order(Monitor,FW), Order(FW,LB) →
        // VPN -> [Monitor | FW] -> LB, zero copies (paper Fig 13 top).
        let policy = Policy::from_chain(["VPN", "Monitor", "FW", "LB"]);
        let c = compile_ok(&policy);
        let g = &c.graph;
        g.validate().unwrap();
        assert_eq!(g.equivalent_chain_length(), 3);
        assert_eq!(g.copies_per_packet(), 0);
        assert_eq!(g.describe(), "VPN -> [Monitor | FW] -> LB");
    }

    #[test]
    fn east_west_chain_matches_figure_13() {
        // Order(IDS,Monitor), Order(Monitor,LB) →
        // IDS -> [Monitor | LB(copy)] (paper Fig 13 bottom, 8.8% overhead).
        let policy = Policy::from_chain(["IDS", "Monitor", "LB"]);
        let c = compile_ok(&policy);
        let g = &c.graph;
        g.validate().unwrap();
        assert_eq!(g.equivalent_chain_length(), 2);
        assert_eq!(g.copies_per_packet(), 1);
        // The LB gets the copy (it is the writer) and it is header-only.
        let Segment::Parallel(grp) = &g.segments[1] else {
            panic!("expected parallel segment, got {}", g.describe());
        };
        let lb = grp
            .members
            .iter()
            .find(|m| g.nodes[m.path[0]].name.as_str() == "LB")
            .unwrap();
        assert_eq!(lb.copy, CopyKind::HeaderOnly);
        assert!(lb.merge_ops.iter().any(|op| matches!(
            op,
            MergeOp::Modify {
                field: FieldId::Sip,
                ..
            }
        )));
        let monitor = grp
            .members
            .iter()
            .find(|m| g.nodes[m.path[0]].name.as_str() == "Monitor")
            .unwrap();
        assert_eq!(monitor.version, VERSION_ORIGINAL);
        // LB is "back order" → higher priority than Monitor.
        assert!(lb.priority > monitor.priority);
    }

    #[test]
    fn figure1b_policy_with_position() {
        let policy = Policy::new()
            .position("VPN", PositionAnchor::First)
            .order("FW", "LB")
            .order("Monitor", "LB");
        let c = compile_ok(&policy);
        let g = &c.graph;
        g.validate().unwrap();
        assert_eq!(g.segments.len(), 3);
        assert!(
            matches!(g.segments[0], Segment::Sequential(id) if g.nodes[id].name.as_str() == "VPN")
        );
    }

    #[test]
    fn sequential_fallback_when_unparallelizable() {
        // NAT before LB cannot parallelize (write→read dependency).
        let policy = Policy::from_chain(["NAT", "LB"]);
        let c = compile_ok(&policy);
        assert_eq!(c.graph.equivalent_chain_length(), 2);
        assert!(c
            .graph
            .segments
            .iter()
            .all(|s| matches!(s, Segment::Sequential(_))));
    }

    #[test]
    fn force_sequential_option() {
        let policy = Policy::from_chain(["Monitor", "Firewall"]);
        let c = compile(
            &policy,
            &registry(),
            &[],
            &CompileOptions {
                force_sequential: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(c.graph.equivalent_chain_length(), 2);
    }

    #[test]
    fn priority_rule_parallelizes_drop_conflict() {
        let mut reg = registry();
        reg.register(
            ActionProfile::new("IPS")
                .reads([
                    FieldId::Sip,
                    FieldId::Dip,
                    FieldId::Sport,
                    FieldId::Dport,
                    FieldId::Payload,
                ])
                .drops(),
        );
        let policy = Policy::new().priority("IPS", "Firewall");
        let c = compile(&policy, &reg, &[], &CompileOptions::default()).unwrap();
        let g = &c.graph;
        assert_eq!(g.equivalent_chain_length(), 1);
        let Segment::Parallel(grp) = &g.segments[0] else {
            panic!("expected parallel group")
        };
        assert_eq!(grp.copies(), 0);
        let ips = grp
            .members
            .iter()
            .find(|m| g.nodes[m.path[0]].name.as_str() == "IPS")
            .unwrap();
        let fw = grp
            .members
            .iter()
            .find(|m| g.nodes[m.path[0]].name.as_str() == "Firewall")
            .unwrap();
        assert!(ips.priority > fw.priority, "IPS must win conflicts");
        assert!(ips.drop_capable && fw.drop_capable);
    }

    #[test]
    fn unparallelizable_priority_becomes_sequential_with_warning() {
        let policy = Policy::new().priority("Monitor", "LB"); // LB writes what Monitor reads
        let c = compile_ok(&policy);
        assert!(c
            .warnings
            .iter()
            .any(|w| matches!(w, CompileWarning::PriorityPairSequential { .. })));
        assert_eq!(c.graph.equivalent_chain_length(), 2);
        // Low-priority NF (LB) runs first so Monitor's result comes last.
        assert!(matches!(
            c.graph.segments[0],
            Segment::Sequential(id) if c.graph.nodes[id].name.as_str() == "LB"
        ));
    }

    #[test]
    fn free_nfs_join_the_graph() {
        let policy = Policy::from_chain(["Monitor", "Firewall"]);
        let c = compile(
            &policy,
            &registry(),
            &[NfName::new("Caching")],
            &CompileOptions::default(),
        )
        .unwrap();
        let g = &c.graph;
        g.validate().unwrap();
        assert_eq!(g.nf_count(), 3);
        // Caching is its own single-NF micrograph; the Monitor|Firewall
        // micrograph already contains a parallel segment, so the merge step
        // places the two micrographs sequentially (chain-only micrographs
        // qualify for parallel composition).
        assert_eq!(g.equivalent_chain_length(), 2, "{}", g.describe());
    }

    #[test]
    fn unknown_nf_is_an_error() {
        let policy = Policy::from_chain(["Firewall", "Quux"]);
        let err = compile(&policy, &registry(), &[], &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::UnknownNf(nf) if nf.as_str() == "Quux"));
    }

    #[test]
    fn conflicting_policy_is_an_error() {
        let policy = Policy::new().order("A", "B").order("B", "A");
        let mut reg = registry();
        reg.register(ActionProfile::new("A"));
        reg.register(ActionProfile::new("B"));
        let err = compile(&policy, &reg, &[], &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::PolicyConflicts(_)));
    }

    #[test]
    fn empty_policy_is_an_error() {
        let err =
            compile(&Policy::new(), &registry(), &[], &CompileOptions::default()).unwrap_err();
        assert_eq!(err, CompileError::EmptyPolicy);
    }

    #[test]
    fn plain_parallelism_micrograph() {
        // Three read-only NFs with pairwise priority rules — paper Fig 2's
        // NF5/NF6/NF7 plain-parallelism micrograph shape.
        let policy = Policy::new()
            .priority("Firewall", "Monitor")
            .priority("Monitor", "Gateway");
        let c = compile_ok(&policy);
        assert_eq!(c.graph.equivalent_chain_length(), 1);
        assert_eq!(c.graph.max_degree(), 3);
        assert_eq!(c.graph.copies_per_packet(), 0);
    }

    #[test]
    fn tree_micrograph_from_shared_root() {
        // Order(VPN,Monitor) + Order(VPN,Firewall): VPN is the root (add/rm
        // forces sequencing), leaves parallelize.
        let policy = Policy::new()
            .order("VPN", "Monitor")
            .order("VPN", "Firewall");
        let c = compile_ok(&policy);
        assert_eq!(c.graph.describe(), "VPN -> [Monitor | Firewall]");
    }

    #[test]
    fn pinned_edge_rules_are_consumed_with_warning() {
        let policy = Policy::new()
            .position("VPN", PositionAnchor::First)
            .order("VPN", "Monitor")
            .order("Monitor", "Firewall");
        let c = compile_ok(&policy);
        assert!(c.warnings.iter().any(|w| matches!(
            w,
            CompileWarning::OrderWithPinnedNf {
                consistent: true,
                ..
            }
        )));
        assert_eq!(c.graph.describe(), "VPN -> [Monitor | Firewall]");
    }

    #[test]
    fn order_to_priority_conversion_direction() {
        // Monitor before Firewall, parallelizable: Firewall (back order)
        // gets the higher priority.
        let policy = Policy::from_chain(["Monitor", "Firewall"]);
        let c = compile_ok(&policy);
        let Segment::Parallel(grp) = &c.graph.segments[0] else {
            panic!("expected parallel group")
        };
        let prio = |name: &str| {
            grp.members
                .iter()
                .find(|m| c.graph.nodes[m.path[0]].name.as_str() == name)
                .unwrap()
                .priority
        };
        assert!(prio("Firewall") > prio("Monitor"));
        // Verdict recorded matches Algorithm 1.
        let reg = registry();
        let a = identify(
            reg.get("Monitor").unwrap(),
            reg.get("Firewall").unwrap(),
            &DependencyTable::paper_table3(),
            IdentifyOptions::default(),
        );
        assert_eq!(a.verdict(), Parallelism::ParallelizableNoCopy);
    }

    #[test]
    fn micrograph_parallel_composition_of_chains() {
        // Two independent unparallelizable chains: (NAT -> LB) and a free
        // Gateway. NAT->LB writes header fields that Gateway reads, so the
        // chain micrograph and Gateway are *dependent* → sequential, with a
        // warning. Use two read-only chains instead for the parallel case.
        let policy = Policy::new()
            .order("Monitor", "Caching") // read-only pair, but force chain via distinct micrographs
            .order("Gateway", "NIDS");
        let c = compile_ok(&policy);
        // All four are read-only: both micrographs are parallel groups of
        // 2 themselves... they are separate components merged in parallel.
        let g = &c.graph;
        g.validate().unwrap();
        assert_eq!(g.nf_count(), 4);
        assert_eq!(g.copies_per_packet(), 0);
    }
}
