//! The NF Parallelism Identification algorithm — paper Algorithm 1.
//!
//! Input: an ordered NF pair (`Order(NF1, before, NF2)` or the low→high
//! direction of a `Priority` rule). Output: whether the pair is
//! parallelizable and, if so, the list of *conflicting actions* whose
//! existence "indicates the necessity of packet copying".

use crate::action::{Action, ActionKind, ActionProfile};
use crate::deps::{DependencyTable, Parallelism};

/// Options controlling the identification.
#[derive(Debug, Clone, Copy)]
pub struct IdentifyOptions {
    /// OP#1 **Dirty Memory Reusing**: when two NFs read/write *different*
    /// fields they may share one packet copy. "If a network operator cares
    /// little about resource consumption… this feature could be switched
    /// off" (§4.2) — with it off, every read-write/write-write pair counts
    /// as conflicting and forces a copy.
    pub dirty_memory_reusing: bool,
}

impl Default for IdentifyOptions {
    fn default() -> Self {
        Self {
            dirty_memory_reusing: true,
        }
    }
}

/// Which rule type asked for the analysis.
///
/// An explicit `Priority` rule is the operator saying "parallelize these
/// two and resolve conflicts in my favourite's favour" — so gray verdicts
/// caused purely by *drop* actions are overridden (the priority itself is
/// the conflict resolution, paper §3's `Priority(IPS > Firewall)`). Gray
/// verdicts with no defined resolution (write→read, add/rm) are never
/// overridden.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PairContext {
    /// Derived from an `Order` rule (or an unrelated pair the compiler
    /// probes): strict result-correctness analysis.
    #[default]
    Order,
    /// Derived from an explicit `Priority` rule: drop conflicts are
    /// operator-sanctioned.
    Priority,
}

/// Result of Algorithm 1 for one ordered NF pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairAnalysis {
    /// `p` in the paper: can the two NFs run in parallel at all?
    pub parallelizable: bool,
    /// `ca` in the paper: the action pairs that conflict; non-empty means a
    /// packet copy (and merge operations) are required.
    pub conflicting_actions: Vec<(Action, Action)>,
    /// True when the pair has a drop conflict that a `Priority` rule
    /// resolved (merge-time resolution, no copy needed).
    pub drop_conflict: bool,
}

impl PairAnalysis {
    /// True when parallel execution requires a packet copy.
    pub fn needs_copy(&self) -> bool {
        self.parallelizable && !self.conflicting_actions.is_empty()
    }

    /// Paper-style verdict classification (the three Table 3 colours).
    pub fn verdict(&self) -> Parallelism {
        if !self.parallelizable {
            Parallelism::NotParallelizable
        } else if self.conflicting_actions.is_empty() {
            Parallelism::ParallelizableNoCopy
        } else {
            Parallelism::ParallelizableWithCopy
        }
    }
}

/// Run Algorithm 1 on `Order(nf1, before, nf2)`.
///
/// Line-by-line correspondence with the paper's listing:
/// * lines 1–2 — the action lists are the profiles' `actions`;
/// * line 5 — exhaustive iteration over the cartesian product;
/// * lines 6–9 — read-write / write-write pairs are field-refined: same
///   field ⇒ conflicting action (copy), different fields ⇒ no constraint
///   (Dirty Memory Reusing);
/// * lines 10–17 — everything else consults the dependency table; a gray
///   cell aborts with `parallelizable = false`, an orange cell records the
///   conflicting pair.
pub fn identify(
    nf1: &ActionProfile,
    nf2: &ActionProfile,
    dt: &DependencyTable,
    opts: IdentifyOptions,
) -> PairAnalysis {
    identify_in(nf1, nf2, dt, opts, PairContext::Order)
}

/// [`identify`] with an explicit rule context (see [`PairContext`]).
pub fn identify_in(
    nf1: &ActionProfile,
    nf2: &ActionProfile,
    dt: &DependencyTable,
    opts: IdentifyOptions,
    ctx: PairContext,
) -> PairAnalysis {
    let mut ca = Vec::new();
    let mut drop_conflict = false;
    for &a1 in &nf1.actions {
        for &a2 in &nf2.actions {
            let rw_case = matches!(
                (a1.kind, a2.kind),
                (ActionKind::Read, ActionKind::Write) | (ActionKind::Write, ActionKind::Write)
            );
            if rw_case {
                let same_field = match (a1.field, a2.field) {
                    (Some(f1), Some(f2)) => f1 == f2,
                    // Field-less read/write never occurs in practice, but
                    // treat it conservatively as overlapping.
                    _ => true,
                };
                if same_field || !opts.dirty_memory_reusing {
                    ca.push((a1, a2));
                }
                continue;
            }
            match dt.lookup(a1.kind, a2.kind) {
                Parallelism::NotParallelizable => {
                    // A Priority rule overrides drop-caused grays: the
                    // operator supplied the conflict resolution.
                    let drop_caused = a1.kind == ActionKind::Drop;
                    if ctx == PairContext::Priority && drop_caused {
                        drop_conflict = true;
                        continue;
                    }
                    return PairAnalysis {
                        parallelizable: false,
                        conflicting_actions: Vec::new(),
                        drop_conflict: false,
                    };
                }
                Parallelism::ParallelizableNoCopy => {}
                Parallelism::ParallelizableWithCopy => ca.push((a1, a2)),
            }
        }
    }
    PairAnalysis {
        parallelizable: true,
        conflicting_actions: ca,
        drop_conflict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table2::Registry;
    use nfp_packet::FieldId;

    fn run(nf1: &str, nf2: &str) -> PairAnalysis {
        let r = Registry::paper_table2();
        identify(
            r.get(nf1).unwrap(),
            r.get(nf2).unwrap(),
            &DependencyTable::paper_table3(),
            IdentifyOptions::default(),
        )
    }

    #[test]
    fn monitor_then_firewall_parallel_no_copy() {
        // The Figure 1 optimization: Monitor ∥ Firewall with zero overhead.
        let a = run("Monitor", "Firewall");
        assert_eq!(a.verdict(), Parallelism::ParallelizableNoCopy);
    }

    #[test]
    fn monitor_then_lb_needs_copy() {
        // The east-west chain: Monitor reads SIP/DIP that the LB rewrites —
        // parallelizable with a (header-only) copy, the paper's 8.8%.
        let a = run("Monitor", "LoadBalancer");
        assert_eq!(a.verdict(), Parallelism::ParallelizableWithCopy);
        assert!(a.needs_copy());
        // The conflicts are exactly the read-write collisions on sip/dip.
        for (a1, a2) in &a.conflicting_actions {
            assert_eq!(a1.kind, ActionKind::Read);
            assert_eq!(a2.kind, ActionKind::Write);
            assert!(matches!(a1.field, Some(FieldId::Sip) | Some(FieldId::Dip)));
            assert_eq!(a1.field, a2.field);
        }
        assert_eq!(a.conflicting_actions.len(), 2);
    }

    #[test]
    fn lb_then_monitor_not_parallelizable() {
        // Reverse direction: the Monitor must observe the LB's rewrite.
        let a = run("LoadBalancer", "Monitor");
        assert!(!a.parallelizable);
    }

    #[test]
    fn nat_then_lb_not_parallelizable() {
        // "If the operator inputs an Order(NAT, before, LB), the
        // orchestrator is challenged" — NAT writes DIP that LB reads.
        let a = run("NAT", "LoadBalancer");
        assert!(!a.parallelizable);
    }

    #[test]
    fn vpn_then_anything_sequential() {
        // Add/Rm in NF1 forces sequencing (header structure changes).
        for nf2 in ["Firewall", "Monitor", "NIDS", "LoadBalancer"] {
            assert!(!run("VPN", nf2).parallelizable, "VPN -> {nf2}");
        }
    }

    #[test]
    fn reader_then_vpn_needs_copy() {
        // (Read, Add/Rm) is orange: the VPN restructures its own copy.
        // (A drop-capable reader like the Firewall is blocked by the Drop
        // row instead.)
        let a = run("Monitor", "VPN");
        assert_eq!(a.verdict(), Parallelism::ParallelizableWithCopy);
    }

    #[test]
    fn two_readers_no_copy() {
        let a = run("NIDS", "Caching");
        assert_eq!(a.verdict(), Parallelism::ParallelizableNoCopy);
    }

    #[test]
    fn firewall_ips_drop_conflict_needs_priority_rule() {
        // Two drop-capable NFs: under an Order rule the drop dependency is
        // gray; under an explicit Priority rule it parallelizes copylessly
        // with the conflict resolved by priority at merge time (paper §3).
        let r = Registry::paper_table2();
        let ips = crate::action::ActionProfile::new("IPS")
            .reads([
                FieldId::Sip,
                FieldId::Dip,
                FieldId::Sport,
                FieldId::Dport,
                FieldId::Payload,
            ])
            .drops();
        let dt = DependencyTable::paper_table3();
        let ordered = identify(
            r.get("Firewall").unwrap(),
            &ips,
            &dt,
            IdentifyOptions::default(),
        );
        assert!(!ordered.parallelizable);
        let forced = identify_in(
            r.get("Firewall").unwrap(),
            &ips,
            &dt,
            IdentifyOptions::default(),
            PairContext::Priority,
        );
        assert_eq!(forced.verdict(), Parallelism::ParallelizableNoCopy);
        assert!(forced.drop_conflict);
    }

    #[test]
    fn priority_does_not_override_write_read_gray() {
        // Priority can resolve drop disagreements, not data dependencies.
        let r = Registry::paper_table2();
        let dt = DependencyTable::paper_table3();
        let a = identify_in(
            r.get("LoadBalancer").unwrap(),
            r.get("Monitor").unwrap(),
            &dt,
            IdentifyOptions::default(),
            PairContext::Priority,
        );
        assert!(!a.parallelizable);
    }

    #[test]
    fn firewall_then_lb_blocked_by_drop_row() {
        // The north-south chain's Order(FW, before, LB) stays sequential —
        // exactly why the paper reports 0% overhead for that chain.
        let a = run("Firewall", "LoadBalancer");
        assert!(!a.parallelizable);
    }

    #[test]
    fn dirty_memory_reusing_off_forces_copies() {
        // Writers of *different* fields share a copy only under OP#1.
        let w1 = ActionProfile::new("W1").writes([FieldId::Sip]);
        let w2 = ActionProfile::new("W2").writes([FieldId::Dport]);
        let dt = DependencyTable::paper_table3();
        let on = identify(&w1, &w2, &dt, IdentifyOptions::default());
        assert_eq!(on.verdict(), Parallelism::ParallelizableNoCopy);
        let off = identify(
            &w1,
            &w2,
            &dt,
            IdentifyOptions {
                dirty_memory_reusing: false,
            },
        );
        assert_eq!(off.verdict(), Parallelism::ParallelizableWithCopy);
    }

    #[test]
    fn empty_profile_parallelizes_with_everything() {
        // The traffic shaper has no packet actions at all.
        for nf2 in ["Firewall", "VPN", "NAT"] {
            let a = run("TrafficShaper", nf2);
            assert_eq!(a.verdict(), Parallelism::ParallelizableNoCopy, "{nf2}");
            let b = run(nf2, "TrafficShaper");
            assert_eq!(b.verdict(), Parallelism::ParallelizableNoCopy, "{nf2} fwd");
        }
    }
}
