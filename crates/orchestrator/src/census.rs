//! The NF-pair parallelizability census — paper §4.3.
//!
//! "We input all possible NF pairs from Table 2 into the algorithm.
//! According to the algorithm output and the appearance probabilities of
//! the NF pairs, we find that 53.8% NF pairs can work in parallel. In
//! particular, 41.5% pairs can be parallelized without causing extra
//! resource overhead."
//!
//! The paper does not fully specify the pair-probability model (five of the
//! eleven Table 2 rows carry no deployment percentage), so the census here
//! supports two weightings and the bench harness prints both next to the
//! paper's numbers:
//!
//! * [`Weighting::Uniform`] — every ordered pair of distinct NF types
//!   counts equally;
//! * [`Weighting::DeploymentShare`] — ordered pairs weighted by the product
//!   of the two NFs' enterprise deployment shares (rows without a share are
//!   excluded, mirroring "percentages derived from \[60\]").

use crate::alg1::{identify, IdentifyOptions};
use crate::deps::{DependencyTable, Parallelism};
use crate::table2::Registry;

/// Pair-probability model for the census.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weighting {
    /// Uniform over ordered pairs of distinct registered NF types.
    Uniform,
    /// Weighted by the product of deployment shares; rows without a share
    /// are excluded.
    DeploymentShare,
}

/// One analyzed pair, for reporting.
#[derive(Debug, Clone)]
pub struct PairRow {
    /// NF ordered first.
    pub nf1: String,
    /// NF ordered second.
    pub nf2: String,
    /// Algorithm 1 verdict.
    pub verdict: Parallelism,
    /// Weight assigned by the chosen model (sums to 1 across rows).
    pub weight: f64,
}

/// Aggregated census result.
#[derive(Debug, Clone)]
pub struct CensusReport {
    /// Weighting used.
    pub weighting: Weighting,
    /// Weighted fraction of pairs that can work in parallel at all.
    pub parallelizable: f64,
    /// Weighted fraction parallelizable with **no** copy (no extra
    /// resource overhead).
    pub no_copy: f64,
    /// Weighted fraction requiring a packet copy.
    pub with_copy: f64,
    /// Per-pair detail rows.
    pub pairs: Vec<PairRow>,
}

impl CensusReport {
    /// Count of rows with the given verdict (unweighted).
    pub fn count(&self, v: Parallelism) -> usize {
        self.pairs.iter().filter(|p| p.verdict == v).count()
    }
}

/// Run the census over every ordered pair of distinct NF types in
/// `registry`.
pub fn census(registry: &Registry, weighting: Weighting, opts: IdentifyOptions) -> CensusReport {
    let dt = DependencyTable::paper_table3();
    let names = registry.nf_types();
    let mut pairs = Vec::new();
    let mut total_weight = 0.0;
    for &n1 in &names {
        for &n2 in &names {
            if n1 == n2 {
                continue;
            }
            let raw_weight = match weighting {
                Weighting::Uniform => 1.0,
                Weighting::DeploymentShare => {
                    let s1 = registry.entry(n1).and_then(|e| e.deployment_share);
                    let s2 = registry.entry(n2).and_then(|e| e.deployment_share);
                    match (s1, s2) {
                        (Some(a), Some(b)) => a * b,
                        _ => continue,
                    }
                }
            };
            let analysis = identify(
                registry.get(n1).unwrap(),
                registry.get(n2).unwrap(),
                &dt,
                opts,
            );
            total_weight += raw_weight;
            pairs.push(PairRow {
                nf1: n1.to_string(),
                nf2: n2.to_string(),
                verdict: analysis.verdict(),
                weight: raw_weight,
            });
        }
    }
    let mut parallelizable = 0.0;
    let mut no_copy = 0.0;
    let mut with_copy = 0.0;
    for row in &mut pairs {
        row.weight /= total_weight;
        match row.verdict {
            Parallelism::ParallelizableNoCopy => {
                parallelizable += row.weight;
                no_copy += row.weight;
            }
            Parallelism::ParallelizableWithCopy => {
                parallelizable += row.weight;
                with_copy += row.weight;
            }
            Parallelism::NotParallelizable => {}
        }
    }
    CensusReport {
        weighting,
        parallelizable,
        no_copy,
        with_copy,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_census_shape_matches_paper_claim() {
        // Paper claim: a majority of pairs parallelize, and most of those
        // need no copy. Absolute figures (53.8% / 41.5%) depend on the
        // paper's unspecified pair weighting; the *shape* must hold.
        let report = census(
            &Registry::paper_table2(),
            Weighting::Uniform,
            IdentifyOptions::default(),
        );
        assert_eq!(report.pairs.len(), 11 * 10);
        assert!(
            report.parallelizable > 0.5,
            "parallelizable = {}",
            report.parallelizable
        );
        assert!(report.no_copy > report.with_copy);
        let sum = report.no_copy + report.with_copy;
        assert!((report.parallelizable - sum).abs() < 1e-9);
    }

    #[test]
    fn deployment_census_reproduces_paper_numbers_exactly() {
        // Paper §4.3: "53.8% NF pairs can work in parallel. In particular,
        // 41.5% pairs can be parallelized without causing extra resource
        // overhead." The deployment-share weighting over Table 2 (ordered
        // pairs of the six NFs with percentages) reproduces the paper's
        // numbers to the decimal, which also pins down the Drop row of
        // Table 3 as not-parallelizable.
        let report = census(
            &Registry::paper_table2(),
            Weighting::DeploymentShare,
            IdentifyOptions::default(),
        );
        assert!(
            (report.parallelizable * 100.0 - 53.8).abs() < 0.05,
            "parallelizable = {:.2}%",
            report.parallelizable * 100.0
        );
        assert!(
            (report.no_copy * 100.0 - 41.5).abs() < 0.05,
            "no_copy = {:.2}%",
            report.no_copy * 100.0
        );
        assert!(
            (report.with_copy * 100.0 - 12.3).abs() < 0.05,
            "with_copy = {:.2}%",
            report.with_copy * 100.0
        );
    }

    #[test]
    fn weights_sum_to_one() {
        for w in [Weighting::Uniform, Weighting::DeploymentShare] {
            let report = census(&Registry::paper_table2(), w, IdentifyOptions::default());
            let total: f64 = report.pairs.iter().map(|p| p.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "{w:?}: {total}");
        }
    }

    #[test]
    fn deployment_census_excludes_unshared_rows() {
        let report = census(
            &Registry::paper_table2(),
            Weighting::DeploymentShare,
            IdentifyOptions::default(),
        );
        // 6 rows carry shares → 6×5 ordered pairs.
        assert_eq!(report.pairs.len(), 30);
        assert!(report
            .pairs
            .iter()
            .all(|p| p.nf1 != "Monitor" && p.nf2 != "Monitor"));
    }

    #[test]
    fn disabling_op1_shifts_no_copy_to_copy() {
        let on = census(
            &Registry::paper_table2(),
            Weighting::Uniform,
            IdentifyOptions::default(),
        );
        let off = census(
            &Registry::paper_table2(),
            Weighting::Uniform,
            IdentifyOptions {
                dirty_memory_reusing: false,
            },
        );
        assert!((on.parallelizable - off.parallelizable).abs() < 1e-9);
        assert!(off.with_copy >= on.with_copy);
        assert!(off.no_copy <= on.no_copy);
    }
}
