//! Combining parallelism and modularity — paper §7, Figure 15.
//!
//! OpenBox-style modular NFs decompose into processing *blocks*
//! ("ReadPackets", "HeaderClassifier", "DPI", "Alert", …). After merging
//! two NFs' block chains and sharing their common prefix, NFP can be
//! applied *at block granularity*: independent residual blocks (e.g. the
//! firewall's `Alert` and the IPS's `DPI` in Figure 15) run in parallel,
//! further shortening the equivalent pipeline.

use crate::action::ActionProfile;
use crate::alg1::{identify, IdentifyOptions};
use crate::deps::DependencyTable;

/// One processing block of a modular NF.
#[derive(Debug, Clone)]
pub struct Block {
    /// Block name; equal names are shareable across NFs (OpenBox's
    /// "sharing common building blocks").
    pub name: String,
    /// The block's action profile (blocks are just tiny NFs to the
    /// dependency analysis).
    pub profile: ActionProfile,
}

impl Block {
    /// Construct a block.
    pub fn new(name: impl Into<String>, profile: ActionProfile) -> Self {
        Self {
            name: name.into(),
            profile,
        }
    }
}

/// A modular NF: a linear chain of blocks (the common OpenBox shape; the
/// classifier's branching is folded into the block profiles).
#[derive(Debug, Clone)]
pub struct BlockChain {
    /// NF name.
    pub nf: String,
    /// Blocks in processing order.
    pub blocks: Vec<Block>,
}

/// One stage of the merged block pipeline.
#[derive(Debug, Clone)]
pub struct MergedStage {
    /// Block names executing in this stage (≥2 ⇒ block-level parallelism).
    pub blocks: Vec<String>,
    /// True when the stage is shared between the input NFs.
    pub shared: bool,
}

/// Result of the OpenBox+NFP merge.
#[derive(Debug, Clone)]
pub struct MergedGraph {
    /// The merged pipeline stages.
    pub stages: Vec<MergedStage>,
    /// Pipeline depth of naive sequential composition (all blocks of NF1
    /// then all blocks of NF2).
    pub sequential_depth: usize,
    /// Pipeline depth after sharing only (OpenBox merge, paper Fig 15 mid).
    pub shared_depth: usize,
    /// Pipeline depth after sharing + block parallelism (OpenBox+NFP,
    /// paper Fig 15 bottom).
    pub parallel_depth: usize,
}

/// Merge two modular NFs: share the longest common block-name prefix, then
/// run NFP's dependency analysis over the residual blocks to parallelize
/// independent ones.
pub fn merge(a: &BlockChain, b: &BlockChain, opts: IdentifyOptions) -> MergedGraph {
    let dt = DependencyTable::paper_table3();
    let common = a
        .blocks
        .iter()
        .zip(&b.blocks)
        .take_while(|(x, y)| x.name == y.name)
        .count();

    let mut stages: Vec<MergedStage> = a.blocks[..common]
        .iter()
        .map(|blk| MergedStage {
            blocks: vec![blk.name.clone()],
            shared: true,
        })
        .collect();

    // Residual blocks keep their own NF's internal order; across NFs we
    // greedily pack independent blocks into the same stage.
    let rest_a = &a.blocks[common..];
    let rest_b = &b.blocks[common..];
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < rest_a.len() || ib < rest_b.len() {
        match (rest_a.get(ia), rest_b.get(ib)) {
            (Some(x), Some(y)) => {
                // Blocks of two *merged* NFs have no inherent mutual order
                // (the operator merged them deliberately), so one
                // parallelizable direction suffices — like a Priority rule.
                let fwd = identify(&x.profile, &y.profile, &dt, opts);
                let back = identify(&y.profile, &x.profile, &dt, opts);
                if fwd.parallelizable || back.parallelizable {
                    stages.push(MergedStage {
                        blocks: vec![x.name.clone(), y.name.clone()],
                        shared: false,
                    });
                    ia += 1;
                    ib += 1;
                } else {
                    // Dependent: keep NF-a's block first (stable order).
                    stages.push(MergedStage {
                        blocks: vec![x.name.clone()],
                        shared: false,
                    });
                    ia += 1;
                }
            }
            (Some(x), None) => {
                stages.push(MergedStage {
                    blocks: vec![x.name.clone()],
                    shared: false,
                });
                ia += 1;
            }
            (None, Some(y)) => {
                stages.push(MergedStage {
                    blocks: vec![y.name.clone()],
                    shared: false,
                });
                ib += 1;
            }
            (None, None) => unreachable!(),
        }
    }

    let sequential_depth = a.blocks.len() + b.blocks.len();
    let shared_depth = common + (a.blocks.len() - common) + (b.blocks.len() - common);
    let parallel_depth = stages.len();
    MergedGraph {
        stages,
        sequential_depth,
        shared_depth,
        parallel_depth,
    }
}

/// The paper's Figure 15 firewall block chain.
pub fn figure15_firewall() -> BlockChain {
    use nfp_packet::FieldId::*;
    BlockChain {
        nf: "Firewall".into(),
        blocks: vec![
            Block::new("ReadPackets", ActionProfile::new("ReadPackets")),
            Block::new(
                "HeaderClassifier",
                ActionProfile::new("HeaderClassifier")
                    .reads([Sip, Dip, Sport, Dport])
                    .drops(),
            ),
            Block::new(
                "Alert(Firewall)",
                ActionProfile::new("Alert").reads([Sip, Dip]),
            ),
            Block::new("Output", ActionProfile::new("Output")),
        ],
    }
}

/// The paper's Figure 15 IPS block chain.
pub fn figure15_ips() -> BlockChain {
    use nfp_packet::FieldId::*;
    BlockChain {
        nf: "IPS".into(),
        blocks: vec![
            Block::new("ReadPackets", ActionProfile::new("ReadPackets")),
            Block::new(
                "HeaderClassifier",
                ActionProfile::new("HeaderClassifier")
                    .reads([Sip, Dip, Sport, Dport])
                    .drops(),
            ),
            Block::new("DPI", ActionProfile::new("DPI").reads([Payload]).drops()),
            Block::new("Alert(IPS)", ActionProfile::new("Alert").reads([Sip, Dip])),
            Block::new("Output", ActionProfile::new("Output")),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure15_merge_parallelizes_alert_and_dpi() {
        let m = merge(
            &figure15_firewall(),
            &figure15_ips(),
            IdentifyOptions::default(),
        );
        // Shared prefix: ReadPackets + HeaderClassifier.
        assert!(m.stages[0].shared && m.stages[1].shared);
        assert_eq!(m.stages[0].blocks, vec!["ReadPackets"]);
        // Somewhere after the prefix, Alert(Firewall) runs beside DPI.
        assert!(
            m.stages.iter().any(|s| s.blocks.len() == 2),
            "expected a block-parallel stage: {:?}",
            m.stages
        );
        // Depth strictly improves at each step: 9 sequential, 7 shared,
        // fewer still with block parallelism.
        assert_eq!(m.sequential_depth, 9);
        assert_eq!(m.shared_depth, 7);
        assert!(m.parallel_depth < m.shared_depth);
    }

    #[test]
    fn disjoint_chains_share_nothing() {
        let a = BlockChain {
            nf: "A".into(),
            blocks: vec![Block::new("X", ActionProfile::new("X"))],
        };
        let b = BlockChain {
            nf: "B".into(),
            blocks: vec![Block::new("Y", ActionProfile::new("Y"))],
        };
        let m = merge(&a, &b, IdentifyOptions::default());
        assert!(m.stages.iter().all(|s| !s.shared));
        assert_eq!(m.shared_depth, 2);
        // Two empty profiles are trivially independent → one stage.
        assert_eq!(m.parallel_depth, 1);
    }

    #[test]
    fn identical_chains_fully_share() {
        let a = figure15_firewall();
        let m = merge(&a, &a.clone(), IdentifyOptions::default());
        assert!(m.stages.iter().all(|s| s.shared));
        assert_eq!(m.parallel_depth, a.blocks.len());
    }
}
