//! The NF action model.
//!
//! "NFs may perform various actions on packets including Reading or Writing
//! headers or payloads, Adding or Removing header fields, and Dropping
//! packets" (paper §4.1). An NF's behaviour, for dependency-analysis
//! purposes, is its set of [`Action`]s — its *action profile*.

use nfp_packet::{FieldId, FieldMask};

/// Headers NFs can add/remove and the merger knows how to graft (paper
/// §5.3 uses the IPsec Authentication Header as its example; the set is
/// extensible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeaderKind {
    /// IPsec Authentication Header, inserted between IPv4 and L4.
    AuthHeader,
}

/// What the dataplane should do with traffic addressed to an NF that has
/// failed (panicked or stopped making progress).
///
/// Chain specifications distinguish NFs that may be skipped from NFs that
/// must not be (arXiv:1406.1058); NFP-rs encodes that distinction per NF
/// type. A security-critical NF (firewall, inline IDS, VPN) *fails
/// closed*: packets that would have traversed it are dropped, because
/// forwarding unvetted (or unencrypted) traffic is worse than losing it.
/// A best-effort NF (monitor, compressor) *fails open*: packets bypass it
/// unmodified and the chain keeps delivering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FailurePolicy {
    /// Bypass the failed NF: packets continue unmodified (best-effort
    /// NFs — losing the side effect beats losing the traffic).
    #[default]
    FailOpen,
    /// Drop packets addressed to the failed NF (security-critical NFs —
    /// losing the traffic beats forwarding it unvetted).
    FailClosed,
}

impl core::fmt::Display for FailurePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            FailurePolicy::FailOpen => "fail-open",
            FailurePolicy::FailClosed => "fail-closed",
        })
    }
}

/// The four action categories of the paper's Tables 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// Read a packet field.
    Read,
    /// Write (modify) a packet field.
    Write,
    /// Add headers to or remove headers from the packet.
    AddRm,
    /// Drop the packet.
    Drop,
}

impl ActionKind {
    /// All four kinds, for table iteration.
    pub const ALL: [ActionKind; 4] = [
        ActionKind::Read,
        ActionKind::Write,
        ActionKind::AddRm,
        ActionKind::Drop,
    ];
}

impl core::fmt::Display for ActionKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            ActionKind::Read => "read",
            ActionKind::Write => "write",
            ActionKind::AddRm => "add/rm",
            ActionKind::Drop => "drop",
        })
    }
}

/// One concrete action an NF performs. `Read`/`Write` carry the field they
/// operate on — that is what makes the Dirty Memory Reusing refinement
/// ("if two NFs modify different fields…") possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Action {
    /// The action category.
    pub kind: ActionKind,
    /// The field a `Read`/`Write` touches; `None` for `AddRm` and `Drop`.
    pub field: Option<FieldId>,
}

impl Action {
    /// A read of `field`.
    pub fn read(field: FieldId) -> Self {
        Self {
            kind: ActionKind::Read,
            field: Some(field),
        }
    }

    /// A write of `field`.
    pub fn write(field: FieldId) -> Self {
        Self {
            kind: ActionKind::Write,
            field: Some(field),
        }
    }

    /// A header addition/removal.
    pub fn add_rm() -> Self {
        Self {
            kind: ActionKind::AddRm,
            field: None,
        }
    }

    /// A (possible) packet drop.
    pub fn drop() -> Self {
        Self {
            kind: ActionKind::Drop,
            field: None,
        }
    }
}

impl core::fmt::Display for Action {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.field {
            Some(field) => write!(f, "{}({field})", self.kind),
            None => write!(f, "{}", self.kind),
        }
    }
}

/// An NF's action profile: the row it would occupy in the paper's Table 2.
///
/// Profiles are produced either by hand, by the built-in table
/// ([`crate::table2`]), or by the NF inspector in `nfp-nf` (§5.4), and are
/// the sole input Algorithm 1 needs about an NF.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActionProfile {
    /// NF type name (matches policy NF names by convention).
    pub nf_type: String,
    /// The actions this NF may perform.
    pub actions: Vec<Action>,
    /// When the profile contains `AddRm`: which header the NF adds or
    /// removes, so the graph compiler can emit the matching merge
    /// operation (`add(v2.AH, after, v1.IP)`).
    pub add_rm_header: Option<HeaderKind>,
    /// Explicit failure policy, when the operator pinned one. `None`
    /// means "derive it": see [`ActionProfile::failure_policy`].
    pub failure: Option<FailurePolicy>,
    /// True when the NF keeps per-flow state that must migrate with its
    /// flows across shard-count changes (NAT bindings, LB pins, monitor
    /// counters, IDS stream context). Stateless NFs can be rebuilt from
    /// their config alone; stateful ones need the dataplane to export,
    /// re-partition, and import their flow snapshots during a rescale.
    pub per_flow_state: bool,
}

impl ActionProfile {
    /// Create an empty profile for `nf_type`.
    pub fn new(nf_type: impl Into<String>) -> Self {
        Self {
            nf_type: nf_type.into(),
            actions: Vec::new(),
            add_rm_header: None,
            failure: None,
            per_flow_state: false,
        }
    }

    /// Builder: record reads of every field in `fields`.
    #[must_use]
    pub fn reads<I: IntoIterator<Item = FieldId>>(mut self, fields: I) -> Self {
        for f in fields {
            self.push(Action::read(f));
        }
        self
    }

    /// Builder: record writes of every field in `fields` (a `R/W` cell in
    /// Table 2 is a read plus a write).
    #[must_use]
    pub fn writes<I: IntoIterator<Item = FieldId>>(mut self, fields: I) -> Self {
        for f in fields {
            self.push(Action::write(f));
        }
        self
    }

    /// Builder: record reads *and* writes (`R/W` cells).
    #[must_use]
    pub fn reads_writes<I: IntoIterator<Item = FieldId>>(mut self, fields: I) -> Self {
        for f in fields {
            self.push(Action::read(f));
            self.push(Action::write(f));
        }
        self
    }

    /// Builder: record header addition/removal.
    #[must_use]
    pub fn adds_removes(mut self) -> Self {
        self.push(Action::add_rm());
        if self.add_rm_header.is_none() {
            self.add_rm_header = Some(HeaderKind::AuthHeader);
        }
        self
    }

    /// Builder: record that the NF may drop packets.
    #[must_use]
    pub fn drops(mut self) -> Self {
        self.push(Action::drop());
        self
    }

    /// Builder: mark the NF as keeping per-flow state (see
    /// [`ActionProfile::per_flow_state`]).
    #[must_use]
    pub fn stateful(mut self) -> Self {
        self.per_flow_state = true;
        self
    }

    /// Builder: pin the failure policy to fail-open (bypass on failure),
    /// overriding the drop-capability heuristic.
    #[must_use]
    pub fn fail_open(mut self) -> Self {
        self.failure = Some(FailurePolicy::FailOpen);
        self
    }

    /// Builder: pin the failure policy to fail-closed (drop on failure),
    /// overriding the drop-capability heuristic.
    #[must_use]
    pub fn fail_closed(mut self) -> Self {
        self.failure = Some(FailurePolicy::FailClosed);
        self
    }

    /// Add a single action, deduplicating.
    pub fn push(&mut self, action: Action) {
        if !self.actions.contains(&action) {
            self.actions.push(action);
        }
    }

    /// Mask of fields this NF reads.
    pub fn read_mask(&self) -> FieldMask {
        self.actions
            .iter()
            .filter(|a| a.kind == ActionKind::Read)
            .filter_map(|a| a.field)
            .collect()
    }

    /// Mask of fields this NF writes.
    pub fn write_mask(&self) -> FieldMask {
        self.actions
            .iter()
            .filter(|a| a.kind == ActionKind::Write)
            .filter_map(|a| a.field)
            .collect()
    }

    /// True if the NF adds/removes headers.
    pub fn has_add_rm(&self) -> bool {
        self.actions.iter().any(|a| a.kind == ActionKind::AddRm)
    }

    /// True if the NF may drop packets.
    pub fn has_drop(&self) -> bool {
        self.actions.iter().any(|a| a.kind == ActionKind::Drop)
    }

    /// True if the NF never modifies packets (no writes, no add/rm).
    pub fn is_read_only(&self) -> bool {
        self.write_mask().is_empty() && !self.has_add_rm()
    }

    /// The resolved failure policy: the pinned value when one was set,
    /// otherwise derived from the action profile — an NF that may *drop*
    /// packets is enforcing something, so it fails closed; everything
    /// else fails open.
    pub fn failure_policy(&self) -> FailurePolicy {
        self.failure.unwrap_or(if self.has_drop() {
            FailurePolicy::FailClosed
        } else {
            FailurePolicy::FailOpen
        })
    }
}

impl core::fmt::Display for ActionProfile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:", self.nf_type)?;
        for a in &self.actions {
            write!(f, " {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_deduplicates() {
        let p = ActionProfile::new("X")
            .reads([FieldId::Sip, FieldId::Sip])
            .reads_writes([FieldId::Sip]);
        assert_eq!(p.actions.len(), 2); // read(sip), write(sip)
    }

    #[test]
    fn masks_reflect_actions() {
        let p = ActionProfile::new("LB")
            .reads_writes([FieldId::Sip, FieldId::Dip])
            .reads([FieldId::Sport, FieldId::Dport]);
        assert_eq!(
            p.read_mask(),
            FieldMask::from_fields([FieldId::Sip, FieldId::Dip, FieldId::Sport, FieldId::Dport])
        );
        assert_eq!(
            p.write_mask(),
            FieldMask::from_fields([FieldId::Sip, FieldId::Dip])
        );
        assert!(!p.is_read_only());
    }

    #[test]
    fn read_only_detection() {
        let monitor = ActionProfile::new("Monitor").reads(FieldId::TABLE2);
        assert!(monitor.is_read_only());
        assert!(!monitor.has_drop());
        let fw = ActionProfile::new("FW").reads([FieldId::Sip]).drops();
        assert!(fw.is_read_only()); // drops but never modifies
        assert!(fw.has_drop());
        let vpn = ActionProfile::new("VPN").adds_removes();
        assert!(!vpn.is_read_only());
        assert!(vpn.has_add_rm());
    }

    #[test]
    fn display_is_compact() {
        let p = ActionProfile::new("FW").reads([FieldId::Sip]).drops();
        assert_eq!(p.to_string(), "FW: read(sip) drop");
    }

    #[test]
    fn statefulness_is_off_by_default_and_opt_in() {
        let fw = ActionProfile::new("FW").reads([FieldId::Sip]).drops();
        assert!(!fw.per_flow_state);
        let nat = ActionProfile::new("NAT")
            .reads_writes([FieldId::Sip, FieldId::Sport])
            .stateful();
        assert!(nat.per_flow_state);
    }

    #[test]
    fn failure_policy_derived_from_drop_capability() {
        let fw = ActionProfile::new("FW").reads([FieldId::Sip]).drops();
        assert_eq!(fw.failure_policy(), FailurePolicy::FailClosed);
        let monitor = ActionProfile::new("Monitor").reads(FieldId::TABLE2);
        assert_eq!(monitor.failure_policy(), FailurePolicy::FailOpen);
    }

    #[test]
    fn pinned_failure_policy_overrides_heuristic() {
        // A VPN never drops, but fail-open would forward plaintext.
        let vpn = ActionProfile::new("VPN").adds_removes().fail_closed();
        assert_eq!(vpn.failure_policy(), FailurePolicy::FailClosed);
        // An operator may declare a permissive firewall bypassable.
        let fw = ActionProfile::new("FW").drops().fail_open();
        assert_eq!(fw.failure_policy(), FailurePolicy::FailOpen);
    }
}
