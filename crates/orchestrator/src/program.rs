//! The sealed **Program** artifact — the orchestrator→dataplane handoff.
//!
//! Compilation used to end at a loosely-validated [`GraphTables`]; every
//! engine then re-derived its own wiring from the raw tables and trusted
//! them blindly. A [`Program`] seals the result of compilation into one
//! validated, replicable artifact:
//!
//! * the classification/forwarding/merging **tables** (unchanged),
//! * a **wiring plan** describing which pipeline stage feeds which (the
//!   ring mesh both engines instantiate),
//! * per-position **field masks** (which fields each NF may write at its
//!   graph position — the scope Dirty Memory Reusing granted it),
//! * a worst-case **pool footprint** (`slots_per_packet`) so an engine can
//!   reject configurations whose packet pool cannot cover the in-flight
//!   window before wedging the closed loop.
//!
//! Sealing runs invariant checks over the tables: every forwarding target
//! is in range, every copy chain is closable (versions are produced before
//! they are referenced and every copy a merge expects exists), and every
//! merge spec's total count matches its member list. A `Program` that
//! seals successfully can be executed — or replicated per flow shard —
//! without any engine-side re-validation.

use crate::graph::{Segment, ServiceGraph};
use crate::tables::{self, DropBehavior, FtAction, GraphTables, Target};
use nfp_packet::meta::VERSION_ORIGINAL;
use nfp_packet::FieldMask;
use std::sync::Arc;

/// A pipeline stage of the NFP dataplane — the vertices of the wiring
/// plan. Both the threaded engine (one thread per stage) and the sync
/// engine (one dispatch arm per stage) execute the same stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The packet classifier (CT lookup + entry actions).
    Classifier,
    /// One NF runtime, by `NodeId`.
    Nf(usize),
    /// The merger agent (PID-hash router + merge-order sequencer).
    Agent,
    /// One merger instance behind the agent.
    Merger(usize),
    /// The output collector.
    Collector,
}

impl Stage {
    /// The stage that consumes messages sent to `target`. Merger-bound
    /// messages route through the agent (which assigns the merge-order
    /// sequence and picks an instance), so `Target::Merger` maps to
    /// [`Stage::Agent`].
    pub fn of(target: Target) -> Stage {
        match target {
            Target::Nf(i) => Stage::Nf(i),
            Target::Merger(_) => Stage::Agent,
            Target::Output => Stage::Collector,
        }
    }
}

/// The static wiring plan: which stages each stage delivers messages to.
/// Derived once from the tables at seal time; engines instantiate one SPSC
/// ring per (producer stage, consumer stage) edge.
#[derive(Debug, Clone)]
pub struct WiringPlan {
    classifier: Vec<Stage>,
    nfs: Vec<Vec<Stage>>,
    /// Stages the agent reaches when releasing merge outcomes (each merge
    /// spec's `next` actions; may include the agent itself for chained
    /// parallel segments). Merger instances are prepended at query time
    /// because their count is an engine-config choice.
    agent_next: Vec<Stage>,
}

impl WiringPlan {
    fn from_tables(t: &GraphTables) -> Self {
        fn add(stage: Stage, out: &mut Vec<Stage>) {
            if !out.contains(&stage) {
                out.push(stage);
            }
        }
        fn action_targets(actions: &[FtAction], out: &mut Vec<Stage>) {
            for a in actions {
                match a {
                    FtAction::Distribute { targets, .. } => {
                        for t in targets {
                            add(Stage::of(*t), out);
                        }
                    }
                    FtAction::Output { .. } => add(Stage::Collector, out),
                    FtAction::Copy { .. } => {}
                }
            }
        }
        let mut classifier = Vec::new();
        action_targets(&t.entry_actions, &mut classifier);
        let nfs = t
            .nf_configs
            .iter()
            .map(|cfg| {
                let mut out = Vec::new();
                action_targets(&cfg.actions, &mut out);
                if matches!(cfg.on_drop, DropBehavior::NilToMerger { .. }) {
                    // Nil packets travel the same edge as data copies.
                    add(Stage::Agent, &mut out);
                }
                out
            })
            .collect();
        let mut agent_next = Vec::new();
        for spec in &t.merge_specs {
            action_targets(&spec.next, &mut agent_next);
        }
        Self {
            classifier,
            nfs,
            agent_next,
        }
    }

    /// True when `self` and `other` describe the same ring mesh: the same
    /// stage set with the same edges, compared as sets (edge order within a
    /// stage's target list is an artifact of table iteration, not
    /// topology). Engines instantiate rings from the topology once at
    /// startup, so only a topology-identical program can be hot-swapped
    /// into a running engine.
    pub fn same_topology(&self, other: &WiringPlan) -> bool {
        fn same_edge_set(a: &[Stage], b: &[Stage]) -> bool {
            // Target lists are deduplicated at construction, so set
            // equality is length + containment.
            a.len() == b.len() && a.iter().all(|s| b.contains(s))
        }
        same_edge_set(&self.classifier, &other.classifier)
            && self.nfs.len() == other.nfs.len()
            && self
                .nfs
                .iter()
                .zip(&other.nfs)
                .all(|(a, b)| same_edge_set(a, b))
            && same_edge_set(&self.agent_next, &other.agent_next)
    }

    /// The stages `from` delivers packet messages to, given `mergers`
    /// instances behind the agent. (Merger→agent *outcome* rings are typed
    /// separately and are not part of this mesh.)
    pub fn targets_of(&self, from: Stage, mergers: usize) -> Vec<Stage> {
        match from {
            Stage::Classifier => self.classifier.clone(),
            Stage::Nf(i) => self.nfs.get(i).cloned().unwrap_or_default(),
            Stage::Agent => {
                let mut out: Vec<Stage> = (0..mergers).map(Stage::Merger).collect();
                for t in &self.agent_next {
                    if !out.contains(t) {
                        out.push(*t);
                    }
                }
                out
            }
            // Merger instances return outcomes on typed rings; the
            // collector is a sink.
            Stage::Merger(_) | Stage::Collector => Vec::new(),
        }
    }
}

/// Invariant violations found while sealing a [`Program`]. Each names the
/// table inconsistency an engine would otherwise hit at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// A forwarding action targets an NF id outside the graph.
    NfTargetOutOfRange {
        /// The out-of-range node id.
        node: usize,
        /// Number of NFs the tables configure.
        nf_count: usize,
    },
    /// A forwarding action targets a merger for a segment with no spec.
    MissingMergeSpec {
        /// The segment without a merge spec.
        segment: usize,
    },
    /// An entry/next action list references a version before any copy
    /// produced it.
    UnproducedVersion {
        /// The unproduced version.
        version: u8,
    },
    /// An action list copies into a version that already exists.
    DuplicateCopyVersion {
        /// The doubly-produced version.
        version: u8,
    },
    /// A merge spec's total count disagrees with its member list — the
    /// accumulating table would either merge early or wait forever.
    MergeTotalMismatch {
        /// The inconsistent segment.
        segment: usize,
        /// The spec's total count.
        total_count: usize,
        /// Members actually listed.
        members: usize,
    },
    /// A merge spec has no member carrying the original version v1.
    MissingOriginalMember {
        /// The offending segment.
        segment: usize,
    },
    /// Two members of one merge spec carry the same version.
    DuplicateMemberVersion {
        /// The offending segment.
        segment: usize,
        /// The duplicated version.
        version: u8,
    },
    /// A merge spec expects a copy version no forwarding action produces —
    /// the merge count could never close.
    UnclosableCopy {
        /// The offending segment.
        segment: usize,
        /// The never-produced version.
        version: u8,
    },
    /// The tables configure a different NF count than the graph has nodes.
    NfConfigCountMismatch {
        /// Graph nodes.
        expected: usize,
        /// Table NF configs.
        got: usize,
    },
}

impl core::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProgramError::NfTargetOutOfRange { node, nf_count } => {
                write!(
                    f,
                    "forwarding target Nf({node}) out of range ({nf_count} NFs)"
                )
            }
            ProgramError::MissingMergeSpec { segment } => {
                write!(f, "no merge spec for merger-targeted segment {segment}")
            }
            ProgramError::UnproducedVersion { version } => {
                write!(
                    f,
                    "version {version} referenced before any copy produced it"
                )
            }
            ProgramError::DuplicateCopyVersion { version } => {
                write!(f, "version {version} produced twice in one action list")
            }
            ProgramError::MergeTotalMismatch {
                segment,
                total_count,
                members,
            } => write!(
                f,
                "segment {segment}: total_count {total_count} != {members} members"
            ),
            ProgramError::MissingOriginalMember { segment } => {
                write!(f, "segment {segment}: no member carries v1")
            }
            ProgramError::DuplicateMemberVersion { segment, version } => {
                write!(f, "segment {segment}: duplicate member version {version}")
            }
            ProgramError::UnclosableCopy { segment, version } => write!(
                f,
                "segment {segment}: member version {version} is never produced by a copy"
            ),
            ProgramError::NfConfigCountMismatch { expected, got } => {
                write!(
                    f,
                    "graph has {expected} nodes but tables configure {got} NFs"
                )
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A sealed, validated, replicable execution artifact: everything an
/// engine (or N sharded engine replicas) needs to run one service graph.
#[derive(Debug, Clone)]
pub struct Program {
    tables: Arc<GraphTables>,
    wiring: WiringPlan,
    /// Per-`NodeId` write masks (the fields each NF's position permits it
    /// to modify).
    writes: Vec<FieldMask>,
    /// Worst-case pool slots one in-flight packet can occupy (original +
    /// fan-out copies + transient nil packets from drop-capable members).
    slots_per_packet: usize,
    /// Monotonically increasing program version. Freshly sealed programs
    /// start at epoch 0; the orchestrator stamps successors via
    /// [`Program::with_epoch`] and engines track which epoch classified
    /// each in-flight packet during a live swap.
    epoch: u64,
    /// NF type names by `NodeId` — the identity the compatibility check
    /// compares (a hot swap must keep the same NF at every position).
    nf_names: Arc<[String]>,
}

impl Program {
    /// Compile `graph` to tables under match ID `mid` and seal the result.
    pub fn compile(graph: &ServiceGraph, mid: u32) -> Result<Program, ProgramError> {
        Self::seal(tables::generate(graph, mid), graph)
    }

    /// Seal pre-generated `tables` against their source `graph`, running
    /// every invariant check.
    pub fn seal(tables: GraphTables, graph: &ServiceGraph) -> Result<Program, ProgramError> {
        if tables.nf_configs.len() != graph.nodes.len() {
            return Err(ProgramError::NfConfigCountMismatch {
                expected: graph.nodes.len(),
                got: tables.nf_configs.len(),
            });
        }
        validate_tables(&tables)?;
        let wiring = WiringPlan::from_tables(&tables);
        let writes = graph.nodes.iter().map(|n| n.profile.write_mask()).collect();
        let slots_per_packet = slots_per_packet(graph);
        let nf_names = graph
            .nodes
            .iter()
            .map(|n| n.name.as_str().to_owned())
            .collect();
        Ok(Program {
            tables: Arc::new(tables),
            wiring,
            writes,
            slots_per_packet,
            epoch: 0,
            nf_names,
        })
    }

    /// This program's version id. Fresh seals are epoch 0.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The same program stamped with a new epoch id — how the orchestrator
    /// versions a recompiled program before offering it to a running
    /// engine. Epochs must increase monotonically per engine; the diff
    /// check rejects anything else.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// NF type names by graph position (the identity a hot swap preserves).
    pub fn nf_names(&self) -> &[String] {
        &self.nf_names
    }

    /// The sealed tables (shared with classifiers and engine stages).
    pub fn tables(&self) -> &Arc<GraphTables> {
        &self.tables
    }

    /// The match ID this program serves.
    pub fn mid(&self) -> u32 {
        self.tables.mid
    }

    /// Number of NF positions the program drives.
    pub fn nf_count(&self) -> usize {
        self.tables.nf_configs.len()
    }

    /// The stage wiring plan.
    pub fn wiring(&self) -> &WiringPlan {
        &self.wiring
    }

    /// Fields NF `node` may write at its graph position.
    pub fn writes_of(&self, node: usize) -> FieldMask {
        self.writes.get(node).copied().unwrap_or(FieldMask::EMPTY)
    }

    /// Graph positions occupied by stateful NFs (per-flow state that must
    /// be exported/imported across shard-count changes). Empty for an
    /// all-stateless program — a rescale can then skip the state-migration
    /// pass entirely.
    pub fn stateful_nodes(&self) -> Vec<usize> {
        self.tables
            .nf_configs
            .iter()
            .enumerate()
            .filter(|(_, cfg)| cfg.stateful)
            .map(|(i, _)| i)
            .collect()
    }

    /// Worst-case pool slots one admitted packet can occupy at once. An
    /// engine's pool must cover `max_in_flight × slots_per_packet` or the
    /// closed loop can wedge on pool exhaustion.
    pub fn slots_per_packet(&self) -> usize {
        self.slots_per_packet
    }
}

/// Why a candidate program cannot hot-swap over a running one. Every
/// variant means the caller must cold-restart the engine (tear down rings
/// and threads, rebuild from the new program) instead of reconfiguring it
/// live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateRejection {
    /// The candidate's epoch does not advance the running epoch — either a
    /// replay of the current program or an out-of-order update.
    StaleEpoch {
        /// Epoch of the running program.
        current: u64,
        /// Epoch the candidate carries.
        offered: u64,
    },
    /// The candidate serves a different match ID; in-flight packets are
    /// stamped with the running MID and could never resolve against it.
    MidChanged {
        /// Running program's MID.
        current: u32,
        /// Candidate's MID.
        offered: u32,
    },
    /// The candidate has a different number of NF positions — the engine's
    /// NF threads and rings cannot be re-counted live.
    NfCountChanged {
        /// Running NF count.
        current: usize,
        /// Candidate NF count.
        offered: usize,
    },
    /// A graph position is occupied by a different NF type — the engine
    /// would need to construct new NF state mid-stream.
    NfReplaced {
        /// The position that changed.
        node: usize,
        /// NF type running there.
        current: String,
        /// NF type the candidate wants there.
        offered: String,
    },
    /// The candidate's ring topology differs from the mesh the engine
    /// instantiated at startup.
    TopologyChanged,
    /// The candidate needs more pool slots per in-flight packet than the
    /// running program was provisioned for; admitting under it could wedge
    /// the pool.
    FootprintGrew {
        /// Slots per packet the running engine provisioned.
        current: usize,
        /// Slots per packet the candidate requires.
        offered: usize,
    },
}

impl core::fmt::Display for UpdateRejection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UpdateRejection::StaleEpoch { current, offered } => {
                write!(f, "stale epoch {offered} (running epoch {current})")
            }
            UpdateRejection::MidChanged { current, offered } => {
                write!(f, "MID changed {current} -> {offered}")
            }
            UpdateRejection::NfCountChanged { current, offered } => {
                write!(f, "NF count changed {current} -> {offered}")
            }
            UpdateRejection::NfReplaced {
                node,
                current,
                offered,
            } => write!(f, "NF at position {node} replaced: {current} -> {offered}"),
            UpdateRejection::TopologyChanged => write!(f, "ring topology changed"),
            UpdateRejection::FootprintGrew { current, offered } => write!(
                f,
                "pool footprint grew: {current} -> {offered} slots per packet"
            ),
        }
    }
}

impl std::error::Error for UpdateRejection {}

/// The orchestrator-side diff between a running program and a candidate:
/// proof that the candidate is hot-swappable plus a summary of what
/// actually changed (for operators and for engines deciding whether the
/// swap is a no-op).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramUpdate {
    /// Epoch of the running program.
    pub from_epoch: u64,
    /// Epoch of the candidate.
    pub to_epoch: u64,
    /// The classifier's entry actions changed.
    pub entry_actions_changed: bool,
    /// Graph positions whose runtime config (forwarding actions, access
    /// mode, drop/failure policy) changed.
    pub nfs_changed: Vec<usize>,
    /// Any merge spec (membership, priorities, merge ops, next hops)
    /// changed.
    pub merge_specs_changed: bool,
    /// Any per-position write mask changed.
    pub writes_changed: bool,
}

impl ProgramUpdate {
    /// Check whether `new` can replace `old` in a running engine. Returns
    /// the diff when the swap is safe (same MID, same NF set, same ring
    /// topology, no pool-footprint growth, strictly advancing epoch);
    /// otherwise the structured reason a cold restart is required.
    pub fn diff(old: &Program, new: &Program) -> Result<ProgramUpdate, UpdateRejection> {
        if new.epoch() <= old.epoch() {
            return Err(UpdateRejection::StaleEpoch {
                current: old.epoch(),
                offered: new.epoch(),
            });
        }
        if new.mid() != old.mid() {
            return Err(UpdateRejection::MidChanged {
                current: old.mid(),
                offered: new.mid(),
            });
        }
        if new.nf_count() != old.nf_count() {
            return Err(UpdateRejection::NfCountChanged {
                current: old.nf_count(),
                offered: new.nf_count(),
            });
        }
        for (node, (a, b)) in old.nf_names().iter().zip(new.nf_names()).enumerate() {
            if a != b {
                return Err(UpdateRejection::NfReplaced {
                    node,
                    current: a.clone(),
                    offered: b.clone(),
                });
            }
        }
        if !old.wiring().same_topology(new.wiring()) {
            return Err(UpdateRejection::TopologyChanged);
        }
        if new.slots_per_packet() > old.slots_per_packet() {
            return Err(UpdateRejection::FootprintGrew {
                current: old.slots_per_packet(),
                offered: new.slots_per_packet(),
            });
        }
        let ot = old.tables();
        let nt = new.tables();
        Ok(ProgramUpdate {
            from_epoch: old.epoch(),
            to_epoch: new.epoch(),
            entry_actions_changed: ot.entry_actions != nt.entry_actions,
            nfs_changed: ot
                .nf_configs
                .iter()
                .zip(&nt.nf_configs)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .map(|(i, _)| i)
                .collect(),
            merge_specs_changed: ot.merge_specs != nt.merge_specs,
            writes_changed: old.writes != new.writes,
        })
    }

    /// True when the candidate is byte-identical policy-wise — swapping to
    /// it only advances the epoch.
    pub fn is_noop(&self) -> bool {
        !self.entry_actions_changed
            && self.nfs_changed.is_empty()
            && !self.merge_specs_changed
            && !self.writes_changed
    }
}

/// Worst case per packet: the original, plus (per parallel segment, of
/// which one is active at a time) its fan-out copies plus one transient
/// nil slot per drop-capable member.
fn slots_per_packet(graph: &ServiceGraph) -> usize {
    let worst_segment = graph
        .segments
        .iter()
        .map(|seg| match seg {
            Segment::Sequential(_) => 0,
            Segment::Parallel(grp) => {
                grp.copies() + grp.members.iter().filter(|m| m.drop_capable).count()
            }
        })
        .max()
        .unwrap_or(0);
    1 + worst_segment
}

fn validate_tables(t: &GraphTables) -> Result<(), ProgramError> {
    let nf_count = t.nf_configs.len();
    let check_targets = |actions: &[FtAction]| -> Result<(), ProgramError> {
        for a in actions {
            if let FtAction::Distribute { targets, .. } = a {
                for target in targets {
                    match target {
                        Target::Nf(i) if *i >= nf_count => {
                            return Err(ProgramError::NfTargetOutOfRange { node: *i, nf_count });
                        }
                        Target::Merger(s) if t.merge_spec_for(*s).is_none() => {
                            return Err(ProgramError::MissingMergeSpec { segment: *s });
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(())
    };
    // Entry actions and merge `next` actions start from a lone v1 and must
    // produce every version before referencing it.
    let check_versions = |actions: &[FtAction]| -> Result<(), ProgramError> {
        let mut produced = vec![VERSION_ORIGINAL];
        for a in actions {
            match a {
                FtAction::Copy { from, to, .. } => {
                    if !produced.contains(from) {
                        return Err(ProgramError::UnproducedVersion { version: *from });
                    }
                    if produced.contains(to) {
                        return Err(ProgramError::DuplicateCopyVersion { version: *to });
                    }
                    produced.push(*to);
                }
                FtAction::Distribute { version, .. } | FtAction::Output { version } => {
                    if !produced.contains(version) {
                        return Err(ProgramError::UnproducedVersion { version: *version });
                    }
                }
            }
        }
        Ok(())
    };
    check_targets(&t.entry_actions)?;
    check_versions(&t.entry_actions)?;
    for cfg in &t.nf_configs {
        // Per-NF slices operate on whatever version the member carries, so
        // only target ranges are checkable here.
        check_targets(&cfg.actions)?;
        if let DropBehavior::NilToMerger { segment, .. } = cfg.on_drop {
            if t.merge_spec_for(segment).is_none() {
                return Err(ProgramError::MissingMergeSpec { segment });
            }
        }
    }
    // Every copy version any action list produces, for closability checks.
    let mut all_copies: Vec<u8> = Vec::new();
    let mut collect_copies = |actions: &[FtAction]| {
        for a in actions {
            if let FtAction::Copy { to, .. } = a {
                if !all_copies.contains(to) {
                    all_copies.push(*to);
                }
            }
        }
    };
    collect_copies(&t.entry_actions);
    for cfg in &t.nf_configs {
        collect_copies(&cfg.actions);
    }
    for spec in &t.merge_specs {
        collect_copies(&spec.next);
    }
    for spec in &t.merge_specs {
        check_targets(&spec.next)?;
        check_versions(&spec.next)?;
        if spec.total_count != spec.members.len() || spec.members.is_empty() {
            return Err(ProgramError::MergeTotalMismatch {
                segment: spec.segment,
                total_count: spec.total_count,
                members: spec.members.len(),
            });
        }
        if !spec.members.iter().any(|m| m.version == VERSION_ORIGINAL) {
            return Err(ProgramError::MissingOriginalMember {
                segment: spec.segment,
            });
        }
        // Several members may *share* v1 (OP#1 Dirty Memory Reusing), but a
        // copy version identifies exactly one member.
        let mut versions: Vec<u8> = spec
            .members
            .iter()
            .map(|m| m.version)
            .filter(|&v| v != VERSION_ORIGINAL)
            .collect();
        versions.sort_unstable();
        for w in versions.windows(2) {
            if w[0] == w[1] {
                return Err(ProgramError::DuplicateMemberVersion {
                    segment: spec.segment,
                    version: w[0],
                });
            }
        }
        for m in &spec.members {
            if m.version != VERSION_ORIGINAL && !all_copies.contains(&m.version) {
                return Err(ProgramError::UnclosableCopy {
                    segment: spec.segment,
                    version: m.version,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::table2::Registry;
    use nfp_policy::Policy;

    fn graph(chain: &[&str]) -> ServiceGraph {
        compile(
            &Policy::from_chain(chain.iter().copied()),
            &Registry::paper_table2(),
            &[],
            &CompileOptions::default(),
        )
        .unwrap()
        .graph
    }

    #[test]
    fn firewall_chain_seals() {
        let g = graph(&["Monitor", "Firewall"]);
        let p = Program::compile(&g, 3).unwrap();
        assert_eq!(p.mid(), 3);
        assert_eq!(p.nf_count(), 2);
        // v1 shared pair, firewall drop-capable: 1 + (0 copies + 1 nil).
        assert_eq!(p.slots_per_packet(), 2);
        assert!(!p.writes_of(0).contains(nfp_packet::FieldId::Payload));
    }

    #[test]
    fn wiring_mirrors_tables() {
        let g = graph(&["VPN", "Monitor", "Firewall", "LoadBalancer"]);
        let p = Program::compile(&g, 1).unwrap();
        let w = p.wiring();
        let vpn = g.node_by_name("VPN").unwrap();
        let lb = g.node_by_name("LoadBalancer").unwrap();
        // Classifier feeds the VPN; VPN fans out to the parallel pair.
        assert_eq!(w.targets_of(Stage::Classifier, 2), vec![Stage::Nf(vpn)]);
        let vpn_targets = w.targets_of(Stage::Nf(vpn), 2);
        assert_eq!(vpn_targets.len(), 2);
        // Agent reaches its mergers plus the merge spec's next hop (LB).
        let agent = w.targets_of(Stage::Agent, 2);
        assert!(agent.contains(&Stage::Merger(0)) && agent.contains(&Stage::Merger(1)));
        assert!(agent.contains(&Stage::Nf(lb)));
        // LB outputs.
        assert_eq!(w.targets_of(Stage::Nf(lb), 2), vec![Stage::Collector]);
        // Sinks have no outgoing message rings.
        assert!(w.targets_of(Stage::Merger(0), 2).is_empty());
        assert!(w.targets_of(Stage::Collector, 2).is_empty());
    }

    #[test]
    fn stateful_nodes_reflect_profiles() {
        let g = graph(&["VPN", "Monitor", "Firewall", "LoadBalancer"]);
        let p = Program::compile(&g, 1).unwrap();
        let monitor = g.node_by_name("Monitor").unwrap();
        let lb = g.node_by_name("LoadBalancer").unwrap();
        let mut expected = vec![monitor, lb];
        expected.sort_unstable();
        assert_eq!(p.stateful_nodes(), expected);
    }

    #[test]
    fn out_of_range_target_rejected() {
        let g = graph(&["Monitor", "Firewall"]);
        let mut t = tables::generate(&g, 1);
        if let Some(FtAction::Distribute { targets, .. }) = t.entry_actions.first_mut() {
            targets[0] = Target::Nf(99);
        }
        assert_eq!(
            Program::seal(t, &g).unwrap_err(),
            ProgramError::NfTargetOutOfRange {
                node: 99,
                nf_count: 2
            }
        );
    }

    #[test]
    fn merge_total_mismatch_rejected() {
        let g = graph(&["Monitor", "Firewall"]);
        let mut t = tables::generate(&g, 1);
        t.merge_specs[0].total_count += 1;
        assert!(matches!(
            Program::seal(t, &g).unwrap_err(),
            ProgramError::MergeTotalMismatch { .. }
        ));
    }

    #[test]
    fn unclosable_copy_rejected() {
        // Monitor ∥ LB: the LB's member rides a copy (v2). Removing the
        // copy action leaves the merge spec waiting for a version nobody
        // produces.
        let g = graph(&["Monitor", "LoadBalancer"]);
        let mut t = tables::generate(&g, 1);
        t.entry_actions
            .retain(|a| !matches!(a, FtAction::Copy { .. }));
        t.entry_actions.retain(
            |a| !matches!(a, FtAction::Distribute { version, .. } if *version != VERSION_ORIGINAL),
        );
        assert!(matches!(
            Program::seal(t, &g).unwrap_err(),
            ProgramError::UnclosableCopy { .. }
        ));
    }

    #[test]
    fn missing_merge_spec_rejected() {
        let g = graph(&["Monitor", "Firewall"]);
        let mut t = tables::generate(&g, 1);
        t.merge_specs.clear();
        assert!(matches!(
            Program::seal(t, &g).unwrap_err(),
            ProgramError::MissingMergeSpec { .. }
        ));
    }

    #[test]
    fn nf_config_count_mismatch_rejected() {
        let g = graph(&["Monitor", "Firewall"]);
        let mut t = tables::generate(&g, 1);
        t.nf_configs.pop();
        assert!(matches!(
            Program::seal(t, &g).unwrap_err(),
            ProgramError::NfConfigCountMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn sequential_chain_needs_one_slot() {
        let g = graph(&["NAT", "LoadBalancer"]); // unparallelizable
        let p = Program::compile(&g, 1).unwrap();
        assert_eq!(p.slots_per_packet(), 1);
        assert!(p.tables().merge_specs.is_empty());
    }

    #[test]
    fn copy_segment_counts_copy_slots() {
        let g = graph(&["Monitor", "LoadBalancer"]); // one header-only copy
        let p = Program::compile(&g, 1).unwrap();
        assert_eq!(p.slots_per_packet(), 2);
    }

    /// Same chain compiled against a registry whose Firewall profile pins
    /// the opposite failure policy — the canonical "policy edit" that must
    /// hot-swap.
    fn policy_edit(chain: &[&str], mid: u32) -> Program {
        let mut reg = Registry::paper_table2();
        let mut fw = reg.get("Firewall").unwrap().clone();
        fw.failure = Some(crate::action::FailurePolicy::FailOpen);
        reg.register(fw);
        let g = compile(
            &Policy::from_chain(chain.iter().copied()),
            &reg,
            &[],
            &CompileOptions::default(),
        )
        .unwrap()
        .graph;
        Program::compile(&g, mid).unwrap()
    }

    #[test]
    fn policy_edit_is_hot_swappable() {
        let old = Program::compile(&graph(&["Monitor", "Firewall"]), 1).unwrap();
        let new = policy_edit(&["Monitor", "Firewall"], 1).with_epoch(1);
        let upd = ProgramUpdate::diff(&old, &new).unwrap();
        assert_eq!(upd.from_epoch, 0);
        assert_eq!(upd.to_epoch, 1);
        assert!(!upd.is_noop());
        let fw = graph(&["Monitor", "Firewall"])
            .node_by_name("Firewall")
            .unwrap();
        assert_eq!(upd.nfs_changed, vec![fw]);
        assert!(!upd.entry_actions_changed);
    }

    #[test]
    fn identical_recompile_is_noop_update() {
        let old = Program::compile(&graph(&["Monitor", "Firewall"]), 1).unwrap();
        let new = Program::compile(&graph(&["Monitor", "Firewall"]), 1)
            .unwrap()
            .with_epoch(7);
        let upd = ProgramUpdate::diff(&old, &new).unwrap();
        assert!(upd.is_noop());
        assert_eq!(upd.to_epoch, 7);
    }

    #[test]
    fn stale_epoch_rejected() {
        let old = Program::compile(&graph(&["Monitor", "Firewall"]), 1)
            .unwrap()
            .with_epoch(3);
        let new = Program::compile(&graph(&["Monitor", "Firewall"]), 1)
            .unwrap()
            .with_epoch(3);
        assert_eq!(
            ProgramUpdate::diff(&old, &new).unwrap_err(),
            UpdateRejection::StaleEpoch {
                current: 3,
                offered: 3
            }
        );
    }

    #[test]
    fn nf_set_changes_need_cold_restart() {
        let old = Program::compile(&graph(&["Monitor", "Firewall"]), 1).unwrap();
        // Different NF at position: replaced type.
        let swapped = Program::compile(&graph(&["Monitor", "NAT"]), 1)
            .unwrap()
            .with_epoch(1);
        assert!(matches!(
            ProgramUpdate::diff(&old, &swapped).unwrap_err(),
            UpdateRejection::NfReplaced { node: _, .. }
        ));
        // Different NF count.
        let grown = Program::compile(&graph(&["Monitor", "Firewall", "NAT"]), 1)
            .unwrap()
            .with_epoch(1);
        assert_eq!(
            ProgramUpdate::diff(&old, &grown).unwrap_err(),
            UpdateRejection::NfCountChanged {
                current: 2,
                offered: 3
            }
        );
        // Different MID.
        let other_mid = Program::compile(&graph(&["Monitor", "Firewall"]), 2)
            .unwrap()
            .with_epoch(1);
        assert!(matches!(
            ProgramUpdate::diff(&old, &other_mid).unwrap_err(),
            UpdateRejection::MidChanged {
                current: 1,
                offered: 2
            }
        ));
    }

    #[test]
    fn topology_change_needs_cold_restart() {
        // Monitor ∥ Firewall runs parallel (agent + merger edges); forcing
        // a strict order compiles to a sequential chain — same NF set,
        // different ring mesh.
        let old = Program::compile(&graph(&["Monitor", "Firewall"]), 1).unwrap();
        let sequential = compile(
            &Policy::from_chain(["Monitor", "Firewall"]),
            &Registry::paper_table2(),
            &[],
            &CompileOptions {
                force_sequential: true,
                ..CompileOptions::default()
            },
        )
        .unwrap()
        .graph;
        let new = Program::compile(&sequential, 1).unwrap().with_epoch(1);
        assert_eq!(
            ProgramUpdate::diff(&old, &new).unwrap_err(),
            UpdateRejection::TopologyChanged
        );
    }
}
