//! Pass 1 — profile collection.
//!
//! Interns every NF the policy (or free list) mentions, resolving its
//! action profile from the registry, and memoizes Algorithm 1 pair
//! analyses so later passes can ask "parallelizable?" / "needs copy?"
//! cheaply and consistently. Explicit relations recorded by the transform
//! pass override fresh analyses — a Priority-forced pair stays
//! parallelizable even where an Order-context probe would refuse it.

use super::{CompileError, Compiler, Relation};
use crate::alg1::{identify_in, PairAnalysis, PairContext};
use crate::graph::{GraphNode, NodeId};
use nfp_policy::NfName;

impl<'a> Compiler<'a> {
    pub(super) fn intern(&mut self, nf: &NfName) -> Result<NodeId, CompileError> {
        if let Some(&id) = self.ids.get(nf) {
            return Ok(id);
        }
        let profile = self
            .registry
            .get(nf.as_str())
            .cloned()
            .ok_or_else(|| CompileError::UnknownNf(nf.clone()))?;
        let id = self.nodes.len();
        self.nodes.push(GraphNode {
            name: nf.clone(),
            profile,
        });
        self.ids.insert(nf.clone(), id);
        Ok(id)
    }

    pub(super) fn analyze(&mut self, lo: NodeId, hi: NodeId) -> PairAnalysis {
        self.analyze_in(lo, hi, PairContext::Order)
    }

    pub(super) fn analyze_in(&mut self, lo: NodeId, hi: NodeId, ctx: PairContext) -> PairAnalysis {
        if let Some(a) = self.analysis_cache.get(&(lo, hi, ctx)) {
            return a.clone();
        }
        let a = identify_in(
            &self.nodes[lo].profile,
            &self.nodes[hi].profile,
            &self.dt,
            self.opts.identify,
            ctx,
        );
        self.analysis_cache.insert((lo, hi, ctx), a.clone());
        a
    }

    /// Can `lo` run in parallel with `hi` (lo ordered first), honouring any
    /// explicit relation between them?
    pub(super) fn pair_parallelizable(&mut self, lo: NodeId, hi: NodeId) -> bool {
        match self.relations.get(&(lo, hi)) {
            Some(Relation::Par { .. }) => true,
            Some(Relation::Seq) => false,
            None => self.analyze(lo, hi).parallelizable,
        }
    }

    /// Does the `lo`/`hi` pair require a packet copy when parallelized?
    pub(super) fn pair_needs_copy(&mut self, lo: NodeId, hi: NodeId) -> bool {
        match self.relations.get(&(lo, hi)) {
            Some(Relation::Par { analysis }) => analysis.needs_copy(),
            Some(Relation::Seq) => false,
            None => self.analyze(lo, hi).needs_copy(),
        }
    }
}
