//! Pass 3 — micrograph construction (paper Figure 2, "compile").
//!
//! Connected components of the relation graph become micrographs. Nodes
//! are assigned *levels*: sequential edges force `level(hi) > level(lo)`,
//! and parallel pairs pull both NFs to the same level. Each level then
//! becomes one or more parallel waves after pairwise Algorithm-1 vetting,
//! generalizing the paper's Single-NF / Tree / Plain-Parallelism
//! micrograph taxonomy — a Tree is a one-node wave followed by a parallel
//! wave.

use super::{CompileError, Compiler, Relation};
use crate::graph::{NodeId, Segment};
use std::collections::{HashMap, HashSet};

impl<'a> Compiler<'a> {
    /// Connected components (union-find) over the relation graph.
    pub(super) fn components(&self, pinned: &[bool]) -> Vec<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for &(a, b) in self.relations.keys() {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
        for (i, &pin) in pinned.iter().enumerate().take(n) {
            if pin {
                continue;
            }
            groups.entry(find(&mut parent, i)).or_default().push(i);
        }
        // Mention order keeps compilation deterministic.
        let mut comps: Vec<Vec<NodeId>> = groups.into_values().collect();
        for c in &mut comps {
            c.sort_unstable();
        }
        comps.sort_by_key(|c| c[0]);
        comps
    }

    /// Build one micrograph.
    ///
    /// Nodes are assigned *levels*: sequential edges force `level(hi) >
    /// level(lo)`, and parallel pairs pull both NFs to the same level (that
    /// is what keeps `Order(Monitor, before, FW)` together as one group in
    /// the north-south chain instead of scattering across waves). Each
    /// level then becomes one or more parallel waves after pairwise
    /// Algorithm-1 vetting.
    pub(super) fn build_micrograph(
        &mut self,
        comp: Vec<NodeId>,
    ) -> Result<Micrograph, CompileError> {
        if comp.len() == 1 {
            return Ok(Micrograph {
                segments: vec![Segment::Sequential(comp[0])],
                nodes: comp,
            });
        }
        let in_comp: HashSet<NodeId> = comp.iter().copied().collect();
        let seq_edges: Vec<(NodeId, NodeId)> = self
            .relations
            .iter()
            .filter(|((lo, hi), rel)| {
                matches!(rel, Relation::Seq) && in_comp.contains(lo) && in_comp.contains(hi)
            })
            .map(|(&k, _)| k)
            .collect();
        let par_edges: Vec<(NodeId, NodeId)> = self
            .relations
            .iter()
            .filter(|((lo, hi), rel)| {
                matches!(rel, Relation::Par { .. }) && in_comp.contains(lo) && in_comp.contains(hi)
            })
            .map(|(&k, _)| k)
            .collect();

        // Sequential reachability (small components; BFS per node).
        let mut succs: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &(lo, hi) in &seq_edges {
            succs.entry(lo).or_default().push(hi);
        }
        let reach = |from: NodeId, to: NodeId| -> bool {
            let mut stack = vec![from];
            let mut seen = HashSet::new();
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if let Some(ss) = succs.get(&n) {
                    for &s in ss {
                        if seen.insert(s) {
                            stack.push(s);
                        }
                    }
                }
            }
            false
        };
        // Parallel pairs can only co-level when no sequential path orders
        // them transitively.
        let colevel_pairs: Vec<(NodeId, NodeId)> = par_edges
            .iter()
            .copied()
            .filter(|&(a, b)| !reach(a, b) && !reach(b, a))
            .collect();

        // Fixpoint leveling, with an iteration guard doubling as cycle
        // detection for cycles introduced by priority fallbacks.
        let mut level: HashMap<NodeId, usize> = comp.iter().map(|&n| (n, 0)).collect();
        let bound = comp.len() * comp.len() + 2;
        let mut iterations = 0usize;
        loop {
            let mut changed = false;
            for &(lo, hi) in &seq_edges {
                if level[&hi] < level[&lo] + 1 {
                    level.insert(hi, level[&lo] + 1);
                    changed = true;
                }
            }
            for &(a, b) in &colevel_pairs {
                let l = level[&a].max(level[&b]);
                if level[&a] != l {
                    level.insert(a, l);
                    changed = true;
                }
                if level[&b] != l {
                    level.insert(b, l);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            iterations += 1;
            if iterations > bound || level.values().any(|&l| l > comp.len()) {
                return Err(CompileError::DependencyCycle);
            }
        }

        // Group by level, ascending; tiebreak mention order inside levels.
        let mut levels: Vec<(usize, Vec<NodeId>)> = {
            let mut by_level: HashMap<usize, Vec<NodeId>> = HashMap::new();
            for &n in &comp {
                by_level.entry(level[&n]).or_default().push(n);
            }
            let mut v: Vec<_> = by_level.into_iter().collect();
            v.sort_by_key(|(l, _)| *l);
            v
        };
        let mut segments = Vec::new();
        for (_, nodes) in &mut levels {
            nodes.sort_unstable();
            let ordered = self.par_topo_order(nodes);
            for wave in self.arrange_wave(&ordered) {
                segments.push(self.emit_wave(&wave)?);
            }
        }
        Ok(Micrograph {
            segments,
            nodes: comp,
        })
    }

    /// Order a level's nodes topologically by explicit parallel-pair
    /// directions (lo before hi), tiebreaking by mention order, so
    /// `arrange_wave` never places a high-priority NF ahead of its partner.
    pub(super) fn par_topo_order(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        let set: HashSet<NodeId> = nodes.iter().copied().collect();
        let mut indeg: HashMap<NodeId, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        let mut succs: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (&(lo, hi), rel) in &self.relations {
            if matches!(rel, Relation::Par { .. }) && set.contains(&lo) && set.contains(&hi) {
                succs.entry(lo).or_default().push(hi);
                *indeg.get_mut(&hi).unwrap() += 1;
            }
        }
        let mut ready: Vec<NodeId> = nodes.iter().copied().filter(|n| indeg[n] == 0).collect();
        ready.sort_unstable();
        let mut out = Vec::with_capacity(nodes.len());
        while let Some(n) = ready.first().copied() {
            ready.remove(0);
            out.push(n);
            if let Some(ss) = succs.get(&n) {
                for &s in ss {
                    let d = indeg.get_mut(&s).unwrap();
                    *d -= 1;
                    if *d == 0 {
                        ready.push(s);
                    }
                }
            }
            ready.sort_unstable();
        }
        if out.len() != nodes.len() {
            // Priority cycle among co-leveled nodes (already warned as a
            // policy conflict elsewhere); fall back to mention order.
            return nodes.to_vec();
        }
        out
    }

    /// Split an ordered node list into sub-waves such that, within each
    /// sub-wave, every ordered pair (by position) is parallelizable.
    /// Parallel-pair relation directions (`lo` before `hi`) are honoured;
    /// unrelated pairs take mention order, trying reversed insertion
    /// positions before splitting.
    pub(super) fn arrange_wave(&mut self, ordered: &[NodeId]) -> Vec<Vec<NodeId>> {
        let mut waves: Vec<Vec<NodeId>> = Vec::new();
        'member: for &m in ordered {
            for wave in &mut waves {
                // Try every insertion position, preferring the end (append
                // keeps mention order for unrelated NFs).
                let mut positions: Vec<usize> = (0..=wave.len()).rev().collect();
                // Respect explicit Par directions: m must come after any lo
                // with (lo, m) and before any hi with (m, hi).
                positions.retain(|&pos| self.position_ok(wave, m, pos));
                for pos in positions {
                    if self.wave_accepts(wave, m, pos) {
                        wave.insert(pos, m);
                        continue 'member;
                    }
                }
            }
            waves.push(vec![m]);
        }
        waves
    }

    /// Explicit parallel-pair directions constrain m's position in `wave`.
    pub(super) fn position_ok(&self, wave: &[NodeId], m: NodeId, pos: usize) -> bool {
        for (i, &x) in wave.iter().enumerate() {
            let x_before_m = i < pos;
            if self.relations.contains_key(&(x, m)) && !x_before_m {
                return false;
            }
            if self.relations.contains_key(&(m, x)) && x_before_m {
                return false;
            }
        }
        true
    }

    /// Pairwise Algorithm-1 check for inserting `m` at `pos` (explicit
    /// relations override — a Priority-forced pair counts as parallelizable
    /// even though an Order-context probe would refuse it).
    pub(super) fn wave_accepts(&mut self, wave: &[NodeId], m: NodeId, pos: usize) -> bool {
        for (i, &x) in wave.iter().enumerate() {
            let (lo, hi) = if i < pos { (x, m) } else { (m, x) };
            if !self.pair_parallelizable(lo, hi) {
                return false;
            }
        }
        true
    }
}

/// A compiled micrograph: its segments plus its node set.
#[derive(Debug, Clone)]
pub(super) struct Micrograph {
    pub(super) segments: Vec<Segment>,
    pub(super) nodes: Vec<NodeId>,
}

impl Micrograph {
    /// True when every segment is sequential (a chain or single NF).
    pub(super) fn is_chain(&self) -> bool {
        self.segments
            .iter()
            .all(|s| matches!(s, Segment::Sequential(_)))
    }

    /// The chain's node ids in traversal order (requires `is_chain`).
    pub(super) fn chain_nodes(&self) -> Vec<NodeId> {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Sequential(n) => *n,
                Segment::Parallel(_) => unreachable!("chain_nodes on non-chain"),
            })
            .collect()
    }
}
