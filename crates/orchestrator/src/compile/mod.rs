//! The service-graph compiler — paper §4.4 (Figure 2 workflow).
//!
//! Compilation is organized as explicit passes, one module each:
//!
//! 1. `profiles` — **profile collection**: intern every mentioned NF's
//!    action profile and memoize Algorithm 1 pair analyses (the OP#1
//!    Dirty-Memory-Reusing and OP#2 header-only-copy decisions fall out of
//!    these analyses).
//! 2. `transform` — **policy transform**: `Position` rules pin NFs;
//!    `Order`/`Priority` rules run Algorithm 1 and become directed pair
//!    relations (sequential edge, or parallel pair with conflicting
//!    actions). A parallelizable `Order` rule *is converted into a
//!    Priority*: "the NF with the back order is assigned a higher
//!    priority".
//! 3. `micrographs` — **micrograph construction**: connected components
//!    of the relation graph, arranged into *waves* (the generalization of
//!    the paper's Single-NF / Tree / Plain-Parallelism micrograph
//!    structures — a Tree is a one-node wave followed by a parallel wave).
//! 4. `emit` — **emission & merge**: waves become segments with copy
//!    versions, merge ops and priorities assigned (OP#1: members whose
//!    conflicting-action set against the current v1 sharers is empty share
//!    the original packet; OP#2: copies are header-only unless the member
//!    touches the payload); mutually independent micrographs are placed in
//!    parallel, residual dependencies warned and resolved sequentially in
//!    policy-mention order ("network operators will be informed to further
//!    regulate execution priority").
//!
//! The pipeline ends in a [`ServiceGraph`]; [`Compiled::program`] seals it
//! into a validated, replicable [`Program`] for the dataplane.

mod emit;
mod micrographs;
mod profiles;
mod transform;

use crate::alg1::{IdentifyOptions, PairAnalysis, PairContext};
use crate::deps::DependencyTable;
use crate::graph::{GraphNode, NodeId, Segment, ServiceGraph};
use crate::program::{Program, ProgramError};
use crate::table2::Registry;
use micrographs::Micrograph;
use nfp_packet::meta::VERSION_MAX;
use nfp_policy::{check_conflicts, Conflict, NfName, Policy, PositionAnchor};
use std::collections::HashMap;

/// Compiler options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Options forwarded to Algorithm 1 (OP#1 toggle).
    pub identify: IdentifyOptions,
    /// When true, skip all parallelization and emit a purely sequential
    /// chain (the paper's baseline mode; also used by benches).
    pub force_sequential: bool,
}

/// Fatal compilation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// An NF appears in the policy (or free list) but has no registered
    /// action profile.
    UnknownNf(NfName),
    /// The policy is self-contradictory (see `nfp-policy`'s conflict
    /// detector).
    PolicyConflicts(Vec<Conflict>),
    /// A parallel wave would need more copy versions than the 4-bit
    /// metadata version field can express.
    TooManyVersions {
        /// Versions demanded.
        needed: usize,
    },
    /// The policy mentions no NFs at all.
    EmptyPolicy,
    /// Sequential constraints (Order rules plus priority fallbacks) form a
    /// cycle the conflict checker could not see (e.g. one introduced by an
    /// unparallelizable Priority pair).
    DependencyCycle,
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::UnknownNf(nf) => write!(f, "no action profile registered for `{nf}`"),
            CompileError::PolicyConflicts(cs) => {
                write!(f, "policy conflicts:")?;
                for c in cs {
                    write!(f, " [{c}]")?;
                }
                Ok(())
            }
            CompileError::TooManyVersions { needed } => write!(
                f,
                "parallel group needs {needed} copy versions; metadata allows {VERSION_MAX}"
            ),
            CompileError::EmptyPolicy => write!(f, "policy mentions no NFs"),
            CompileError::DependencyCycle => {
                write!(f, "sequential constraints form a dependency cycle")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Non-fatal compiler diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileWarning {
    /// A `Priority` pair turned out not to be parallelizable; the pair was
    /// chained sequentially (low-priority NF first, so the high-priority
    /// NF's result still wins by coming last).
    PriorityPairSequential {
        /// High-priority NF.
        high: NfName,
        /// Low-priority NF.
        low: NfName,
    },
    /// Two micrographs depend on each other; they were placed sequentially
    /// in policy-mention order, and the operator should regulate their
    /// execution priority explicitly.
    MicrographDependency {
        /// An NF identifying the first micrograph.
        a: NfName,
        /// An NF identifying the second micrograph.
        b: NfName,
    },
    /// An `Order` rule involving a `Position`-pinned NF was redundant (or
    /// unsatisfiable) and was ignored.
    OrderWithPinnedNf {
        /// The pinned NF.
        pinned: NfName,
        /// The other NF in the rule.
        other: NfName,
        /// True when the rule was consistent with the pin (redundant),
        /// false when it contradicted the pin (unsatisfiable).
        consistent: bool,
    },
    /// Several NFs were pinned to the same anchor; they were chained in
    /// policy-mention order.
    AmbiguousAnchorResolved {
        /// The contested anchor.
        anchor: PositionAnchor,
    },
}

/// Successful compilation result.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The optimized service graph.
    pub graph: ServiceGraph,
    /// Diagnostics for the operator.
    pub warnings: Vec<CompileWarning>,
}

impl Compiled {
    /// Seal the compiled graph into a validated, replicable [`Program`]
    /// under match ID `mid` — the artifact engines execute.
    pub fn program(&self, mid: u32) -> Result<Program, ProgramError> {
        Program::compile(&self.graph, mid)
    }
}

/// Directed relation between two NFs, derived from one rule.
#[derive(Debug, Clone)]
enum Relation {
    /// `lo` must complete before `hi` starts.
    Seq,
    /// May run in parallel; `hi` has the higher conflict priority; `ca` is
    /// Algorithm 1's conflicting-action list for the `lo → hi` direction.
    Par { analysis: PairAnalysis },
}

/// Compile `policy` (plus `free_nfs`, deployed NFs the policy does not
/// mention) against the action-profile `registry`.
pub fn compile(
    policy: &Policy,
    registry: &Registry,
    free_nfs: &[NfName],
    opts: &CompileOptions,
) -> Result<Compiled, CompileError> {
    Compiler::new(policy, registry, free_nfs, opts)?.run()
}

struct Compiler<'a> {
    registry: &'a Registry,
    opts: &'a CompileOptions,
    dt: DependencyTable,
    /// NF instances in mention order; index = NodeId.
    nodes: Vec<GraphNode>,
    ids: HashMap<NfName, NodeId>,
    /// Directed relations keyed by (lo, hi) node ids.
    relations: HashMap<(NodeId, NodeId), Relation>,
    pinned_first: Vec<NodeId>,
    pinned_last: Vec<NodeId>,
    warnings: Vec<CompileWarning>,
    /// Cache of Algorithm 1 runs keyed by directed node pair and context.
    analysis_cache: HashMap<(NodeId, NodeId, PairContext), PairAnalysis>,
}

impl<'a> Compiler<'a> {
    fn new(
        policy: &Policy,
        registry: &'a Registry,
        free_nfs: &[NfName],
        opts: &'a CompileOptions,
    ) -> Result<Self, CompileError> {
        // Fatal conflicts abort; ambiguous anchors degrade to warnings.
        let conflicts = check_conflicts(policy);
        let mut warnings = Vec::new();
        let fatal: Vec<Conflict> = conflicts
            .into_iter()
            .filter(|c| match c {
                Conflict::AmbiguousAnchor { anchor, .. } => {
                    warnings.push(CompileWarning::AmbiguousAnchorResolved { anchor: *anchor });
                    false
                }
                _ => true,
            })
            .collect();
        if !fatal.is_empty() {
            return Err(CompileError::PolicyConflicts(fatal));
        }

        let mut compiler = Self {
            registry,
            opts,
            dt: DependencyTable::paper_table3(),
            nodes: Vec::new(),
            ids: HashMap::new(),
            relations: HashMap::new(),
            pinned_first: Vec::new(),
            pinned_last: Vec::new(),
            warnings,
            analysis_cache: HashMap::new(),
        };
        for nf in policy.mentioned_nfs() {
            compiler.intern(&nf)?;
        }
        for nf in free_nfs {
            compiler.intern(nf)?;
        }
        if compiler.nodes.is_empty() {
            return Err(CompileError::EmptyPolicy);
        }
        compiler.transform(policy)?;
        Ok(compiler)
    }

    fn run(mut self) -> Result<Compiled, CompileError> {
        // Step 2: micrographs = connected components over all relations,
        // excluding pinned NFs.
        let pinned: Vec<bool> = (0..self.nodes.len())
            .map(|i| self.pinned_first.contains(&i) || self.pinned_last.contains(&i))
            .collect();
        let components = self.components(&pinned);
        let mut micrographs: Vec<Micrograph> = Vec::new();
        for comp in components {
            micrographs.push(self.build_micrograph(comp)?);
        }
        // Step 3: merge micrographs into the final segment list.
        let mut segments: Vec<Segment> = Vec::new();
        for &id in &self.pinned_first.clone() {
            segments.push(Segment::Sequential(id));
        }
        segments.extend(self.merge_micrographs(micrographs)?);
        for &id in &self.pinned_last.clone() {
            segments.push(Segment::Sequential(id));
        }
        let graph = ServiceGraph {
            nodes: self.nodes,
            segments,
        };
        debug_assert_eq!(graph.validate(), Ok(()));
        Ok(Compiled {
            graph,
            warnings: self.warnings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionProfile;
    use crate::alg1::identify;
    use crate::deps::Parallelism;
    use crate::graph::{CopyKind, MergeOp};
    use nfp_packet::meta::VERSION_ORIGINAL;
    use nfp_packet::FieldId;

    fn registry() -> Registry {
        let mut r = Registry::paper_table2();
        // Instance-name aliases used by the paper's example policies. The
        // evaluated IDS (Snort-like, §6.1) can drop, unlike the read-only
        // NIDS row of Table 2 — that drop is what keeps the IDS sequential
        // in the paper's east-west graph.
        for (alias, ty) in [("FW", "Firewall"), ("LB", "LoadBalancer")] {
            let p = r.get(ty).unwrap().clone_as(alias);
            r.register(p);
        }
        let ids = r.get("NIDS").unwrap().clone_as("IDS").drops();
        r.register(ids);
        r
    }

    impl ActionProfile {
        fn clone_as(&self, name: &str) -> ActionProfile {
            let mut p = self.clone();
            p.nf_type = name.to_string();
            p
        }
    }

    fn compile_ok(policy: &Policy) -> Compiled {
        compile(policy, &registry(), &[], &CompileOptions::default()).unwrap()
    }

    #[test]
    fn north_south_chain_matches_figure_13() {
        // Order(VPN,Monitor), Order(Monitor,FW), Order(FW,LB) →
        // VPN -> [Monitor | FW] -> LB, zero copies (paper Fig 13 top).
        let policy = Policy::from_chain(["VPN", "Monitor", "FW", "LB"]);
        let c = compile_ok(&policy);
        let g = &c.graph;
        g.validate().unwrap();
        assert_eq!(g.equivalent_chain_length(), 3);
        assert_eq!(g.copies_per_packet(), 0);
        assert_eq!(g.describe(), "VPN -> [Monitor | FW] -> LB");
    }

    #[test]
    fn east_west_chain_matches_figure_13() {
        // Order(IDS,Monitor), Order(Monitor,LB) →
        // IDS -> [Monitor | LB(copy)] (paper Fig 13 bottom, 8.8% overhead).
        let policy = Policy::from_chain(["IDS", "Monitor", "LB"]);
        let c = compile_ok(&policy);
        let g = &c.graph;
        g.validate().unwrap();
        assert_eq!(g.equivalent_chain_length(), 2);
        assert_eq!(g.copies_per_packet(), 1);
        // The LB gets the copy (it is the writer) and it is header-only.
        let Segment::Parallel(grp) = &g.segments[1] else {
            panic!("expected parallel segment, got {}", g.describe());
        };
        let lb = grp
            .members
            .iter()
            .find(|m| g.nodes[m.path[0]].name.as_str() == "LB")
            .unwrap();
        assert_eq!(lb.copy, CopyKind::HeaderOnly);
        assert!(lb.merge_ops.iter().any(|op| matches!(
            op,
            MergeOp::Modify {
                field: FieldId::Sip,
                ..
            }
        )));
        let monitor = grp
            .members
            .iter()
            .find(|m| g.nodes[m.path[0]].name.as_str() == "Monitor")
            .unwrap();
        assert_eq!(monitor.version, VERSION_ORIGINAL);
        // LB is "back order" → higher priority than Monitor.
        assert!(lb.priority > monitor.priority);
    }

    #[test]
    fn figure1b_policy_with_position() {
        let policy = Policy::new()
            .position("VPN", PositionAnchor::First)
            .order("FW", "LB")
            .order("Monitor", "LB");
        let c = compile_ok(&policy);
        let g = &c.graph;
        g.validate().unwrap();
        assert_eq!(g.segments.len(), 3);
        assert!(
            matches!(g.segments[0], Segment::Sequential(id) if g.nodes[id].name.as_str() == "VPN")
        );
    }

    #[test]
    fn sequential_fallback_when_unparallelizable() {
        // NAT before LB cannot parallelize (write→read dependency).
        let policy = Policy::from_chain(["NAT", "LB"]);
        let c = compile_ok(&policy);
        assert_eq!(c.graph.equivalent_chain_length(), 2);
        assert!(c
            .graph
            .segments
            .iter()
            .all(|s| matches!(s, Segment::Sequential(_))));
    }

    #[test]
    fn force_sequential_option() {
        let policy = Policy::from_chain(["Monitor", "Firewall"]);
        let c = compile(
            &policy,
            &registry(),
            &[],
            &CompileOptions {
                force_sequential: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(c.graph.equivalent_chain_length(), 2);
    }

    #[test]
    fn priority_rule_parallelizes_drop_conflict() {
        let mut reg = registry();
        reg.register(
            ActionProfile::new("IPS")
                .reads([
                    FieldId::Sip,
                    FieldId::Dip,
                    FieldId::Sport,
                    FieldId::Dport,
                    FieldId::Payload,
                ])
                .drops(),
        );
        let policy = Policy::new().priority("IPS", "Firewall");
        let c = compile(&policy, &reg, &[], &CompileOptions::default()).unwrap();
        let g = &c.graph;
        assert_eq!(g.equivalent_chain_length(), 1);
        let Segment::Parallel(grp) = &g.segments[0] else {
            panic!("expected parallel group")
        };
        assert_eq!(grp.copies(), 0);
        let ips = grp
            .members
            .iter()
            .find(|m| g.nodes[m.path[0]].name.as_str() == "IPS")
            .unwrap();
        let fw = grp
            .members
            .iter()
            .find(|m| g.nodes[m.path[0]].name.as_str() == "Firewall")
            .unwrap();
        assert!(ips.priority > fw.priority, "IPS must win conflicts");
        assert!(ips.drop_capable && fw.drop_capable);
    }

    #[test]
    fn unparallelizable_priority_becomes_sequential_with_warning() {
        let policy = Policy::new().priority("Monitor", "LB"); // LB writes what Monitor reads
        let c = compile_ok(&policy);
        assert!(c
            .warnings
            .iter()
            .any(|w| matches!(w, CompileWarning::PriorityPairSequential { .. })));
        assert_eq!(c.graph.equivalent_chain_length(), 2);
        // Low-priority NF (LB) runs first so Monitor's result comes last.
        assert!(matches!(
            c.graph.segments[0],
            Segment::Sequential(id) if c.graph.nodes[id].name.as_str() == "LB"
        ));
    }

    #[test]
    fn free_nfs_join_the_graph() {
        let policy = Policy::from_chain(["Monitor", "Firewall"]);
        let c = compile(
            &policy,
            &registry(),
            &[NfName::new("Caching")],
            &CompileOptions::default(),
        )
        .unwrap();
        let g = &c.graph;
        g.validate().unwrap();
        assert_eq!(g.nf_count(), 3);
        // Caching is its own single-NF micrograph; the Monitor|Firewall
        // micrograph already contains a parallel segment, so the merge step
        // places the two micrographs sequentially (chain-only micrographs
        // qualify for parallel composition).
        assert_eq!(g.equivalent_chain_length(), 2, "{}", g.describe());
    }

    #[test]
    fn unknown_nf_is_an_error() {
        let policy = Policy::from_chain(["Firewall", "Quux"]);
        let err = compile(&policy, &registry(), &[], &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::UnknownNf(nf) if nf.as_str() == "Quux"));
    }

    #[test]
    fn conflicting_policy_is_an_error() {
        let policy = Policy::new().order("A", "B").order("B", "A");
        let mut reg = registry();
        reg.register(ActionProfile::new("A"));
        reg.register(ActionProfile::new("B"));
        let err = compile(&policy, &reg, &[], &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::PolicyConflicts(_)));
    }

    #[test]
    fn empty_policy_is_an_error() {
        let err =
            compile(&Policy::new(), &registry(), &[], &CompileOptions::default()).unwrap_err();
        assert_eq!(err, CompileError::EmptyPolicy);
    }

    #[test]
    fn plain_parallelism_micrograph() {
        // Three read-only NFs with pairwise priority rules — paper Fig 2's
        // NF5/NF6/NF7 plain-parallelism micrograph shape.
        let policy = Policy::new()
            .priority("Firewall", "Monitor")
            .priority("Monitor", "Gateway");
        let c = compile_ok(&policy);
        assert_eq!(c.graph.equivalent_chain_length(), 1);
        assert_eq!(c.graph.max_degree(), 3);
        assert_eq!(c.graph.copies_per_packet(), 0);
    }

    #[test]
    fn tree_micrograph_from_shared_root() {
        // Order(VPN,Monitor) + Order(VPN,Firewall): VPN is the root (add/rm
        // forces sequencing), leaves parallelize.
        let policy = Policy::new()
            .order("VPN", "Monitor")
            .order("VPN", "Firewall");
        let c = compile_ok(&policy);
        assert_eq!(c.graph.describe(), "VPN -> [Monitor | Firewall]");
    }

    #[test]
    fn pinned_edge_rules_are_consumed_with_warning() {
        let policy = Policy::new()
            .position("VPN", PositionAnchor::First)
            .order("VPN", "Monitor")
            .order("Monitor", "Firewall");
        let c = compile_ok(&policy);
        assert!(c.warnings.iter().any(|w| matches!(
            w,
            CompileWarning::OrderWithPinnedNf {
                consistent: true,
                ..
            }
        )));
        assert_eq!(c.graph.describe(), "VPN -> [Monitor | Firewall]");
    }

    #[test]
    fn order_to_priority_conversion_direction() {
        // Monitor before Firewall, parallelizable: Firewall (back order)
        // gets the higher priority.
        let policy = Policy::from_chain(["Monitor", "Firewall"]);
        let c = compile_ok(&policy);
        let Segment::Parallel(grp) = &c.graph.segments[0] else {
            panic!("expected parallel group")
        };
        let prio = |name: &str| {
            grp.members
                .iter()
                .find(|m| c.graph.nodes[m.path[0]].name.as_str() == name)
                .unwrap()
                .priority
        };
        assert!(prio("Firewall") > prio("Monitor"));
        // Verdict recorded matches Algorithm 1.
        let reg = registry();
        let a = identify(
            reg.get("Monitor").unwrap(),
            reg.get("Firewall").unwrap(),
            &DependencyTable::paper_table3(),
            IdentifyOptions::default(),
        );
        assert_eq!(a.verdict(), Parallelism::ParallelizableNoCopy);
    }

    #[test]
    fn micrograph_parallel_composition_of_chains() {
        // Two independent unparallelizable chains: (NAT -> LB) and a free
        // Gateway. NAT->LB writes header fields that Gateway reads, so the
        // chain micrograph and Gateway are *dependent* → sequential, with a
        // warning. Use two read-only chains instead for the parallel case.
        let policy = Policy::new()
            .order("Monitor", "Caching") // read-only pair, but force chain via distinct micrographs
            .order("Gateway", "NIDS");
        let c = compile_ok(&policy);
        // All four are read-only: both micrographs are parallel groups of
        // 2 themselves... they are separate components merged in parallel.
        let g = &c.graph;
        g.validate().unwrap();
        assert_eq!(g.nf_count(), 4);
        assert_eq!(g.copies_per_packet(), 0);
    }

    #[test]
    fn compiled_graphs_seal_into_programs() {
        for chain in [
            vec!["VPN", "Monitor", "FW", "LB"],
            vec!["IDS", "Monitor", "LB"],
            vec!["NAT", "LB"],
        ] {
            let c = compile_ok(&Policy::from_chain(chain.iter().copied()));
            let p = c.program(1).unwrap();
            assert_eq!(p.nf_count(), c.graph.nf_count());
        }
    }
}
