//! Pass 2 — policy transform (paper Figure 2, "transform").
//!
//! Turns rules into intermediate representations: `Position` rules pin
//! NFs to the head/tail lists, `Order`/`Priority` rules run Algorithm 1
//! and become directed pair [`Relation`]s. A parallelizable `Order` rule
//! is converted into a Priority ("the NF with the back order is assigned
//! a higher priority"); an unparallelizable `Priority` degrades to a
//! sequential edge with the low-priority NF first, so the high-priority
//! result still wins by coming last.

use super::{CompileError, CompileWarning, Compiler, Relation};
use crate::alg1::{PairAnalysis, PairContext};
use crate::graph::NodeId;
use nfp_policy::{Policy, PositionAnchor, Rule};

impl<'a> Compiler<'a> {
    /// Step 1: rules → intermediate representations.
    pub(super) fn transform(&mut self, policy: &Policy) -> Result<(), CompileError> {
        for rule in policy.rules() {
            match rule {
                Rule::Position { nf, anchor } => {
                    let id = self.ids[nf];
                    let list = match anchor {
                        PositionAnchor::First => &mut self.pinned_first,
                        PositionAnchor::Last => &mut self.pinned_last,
                    };
                    if !list.contains(&id) {
                        list.push(id);
                    }
                }
                Rule::Order { before, after } => {
                    let (lo, hi) = (self.ids[before], self.ids[after]);
                    if self.handle_pinned_edge(lo, hi) {
                        continue;
                    }
                    let analysis = if self.opts.force_sequential {
                        PairAnalysis {
                            parallelizable: false,
                            conflicting_actions: Vec::new(),
                            drop_conflict: false,
                        }
                    } else {
                        self.analyze(lo, hi)
                    };
                    let rel = if analysis.parallelizable {
                        // Order → Priority conversion: back NF wins.
                        Relation::Par { analysis }
                    } else {
                        Relation::Seq
                    };
                    self.relations.entry((lo, hi)).or_insert(rel);
                }
                Rule::Priority { high, low } => {
                    let (lo, hi) = (self.ids[low], self.ids[high]);
                    if self.handle_pinned_edge(lo, hi) {
                        continue;
                    }
                    let analysis = if self.opts.force_sequential {
                        PairAnalysis {
                            parallelizable: false,
                            conflicting_actions: Vec::new(),
                            drop_conflict: false,
                        }
                    } else {
                        self.analyze_in(lo, hi, PairContext::Priority)
                    };
                    if analysis.parallelizable {
                        self.relations
                            .entry((lo, hi))
                            .or_insert(Relation::Par { analysis });
                    } else {
                        if !self.opts.force_sequential {
                            self.warnings.push(CompileWarning::PriorityPairSequential {
                                high: self.nodes[hi].name.clone(),
                                low: self.nodes[lo].name.clone(),
                            });
                        }
                        // Low first, so the high-priority result still wins.
                        self.relations.entry((lo, hi)).or_insert(Relation::Seq);
                    }
                }
            }
        }
        Ok(())
    }

    /// Edges that touch a pinned NF are resolved by the pin itself; returns
    /// true when the edge was consumed.
    pub(super) fn handle_pinned_edge(&mut self, lo: NodeId, hi: NodeId) -> bool {
        let lo_first = self.pinned_first.contains(&lo);
        let hi_first = self.pinned_first.contains(&hi);
        let lo_last = self.pinned_last.contains(&lo);
        let hi_last = self.pinned_last.contains(&hi);
        if !(lo_first || hi_first || lo_last || hi_last) {
            return false;
        }
        // Consistent cases: lo pinned first, or hi pinned last.
        let consistent = (lo_first || hi_last) && !(hi_first || lo_last);
        let (pinned, other) = if lo_first || lo_last {
            (lo, hi)
        } else {
            (hi, lo)
        };
        self.warnings.push(CompileWarning::OrderWithPinnedNf {
            pinned: self.nodes[pinned].name.clone(),
            other: self.nodes[other].name.clone(),
            consistent,
        });
        true
    }
}
