//! Pass 4 — emission & micrograph merge (paper Figure 2, "merge").
//!
//! Waves become segments with copy versions, merge ops and priorities
//! assigned. Within every parallel wave the paper's resource optimizations
//! run: members whose conflicting-action set against the current v1
//! sharers is empty *share the original packet* (OP#1 Dirty Memory
//! Reusing makes this common), and members that do need a copy get a
//! header-only copy unless they touch the payload (OP#2). Finally,
//! mutually independent micrographs are placed in parallel; any residual
//! inter-micrograph dependency is reported as a warning and resolved by
//! sequential placement in policy-mention order.

use super::micrographs::Micrograph;
use super::{CompileError, CompileWarning, Compiler};
use crate::action::ActionProfile;
use crate::alg1::identify;
use crate::graph::{CopyKind, GraphNode, Member, MergeOp, NodeId, ParallelGroup, Segment};
use nfp_packet::meta::{VERSION_MAX, VERSION_ORIGINAL};
use nfp_packet::FieldId;

impl<'a> Compiler<'a> {
    /// Emit a segment for one wave, assigning copy versions, merge ops and
    /// priorities (position in the wave = conflict priority; the paper's
    /// "back order gets higher priority").
    pub(super) fn emit_wave(&mut self, wave: &[NodeId]) -> Result<Segment, CompileError> {
        if wave.len() == 1 {
            return Ok(Segment::Sequential(wave[0]));
        }
        let mut members: Vec<Member> = Vec::new();
        // Node ids currently sharing the original packet (v1).
        let mut v1_sharers: Vec<NodeId> = Vec::new();
        let mut next_version = VERSION_ORIGINAL + 1;
        for (rank, &m) in wave.iter().enumerate() {
            let profile = self.nodes[m].profile.clone();
            // Direction follows wave position: all current v1 sharers rank
            // earlier than m because we scan in order.
            let sharers = v1_sharers.clone();
            // Dirty Memory Reusing applies to fixed-width header fields; a
            // payload writer may *resize* the frame (compression), which
            // moves headers — structurally unsafe to share, so it always
            // gets its own copy when anyone else holds v1. (Add/Rm NFs are
            // caught by the conflicting-action check already.)
            let structural_writer =
                profile.write_mask().contains(FieldId::Payload) || profile.has_add_rm();
            let needs_copy = sharers.iter().any(|&s| self.pair_needs_copy(s, m))
                || (structural_writer && !sharers.is_empty());
            let mut member = Member::solo(m);
            member.priority = rank as u32;
            member.drop_capable = profile.has_drop();
            member.writes = profile.write_mask();
            if needs_copy {
                if next_version > VERSION_MAX {
                    return Err(CompileError::TooManyVersions {
                        needed: next_version as usize,
                    });
                }
                member.version = next_version;
                next_version += 1;
                let touches_payload = profile.read_mask().contains(FieldId::Payload)
                    || profile.write_mask().contains(FieldId::Payload);
                member.copy = if touches_payload {
                    CopyKind::Full
                } else {
                    CopyKind::HeaderOnly
                };
                member.merge_ops = merge_ops_for(&profile, member.version);
            } else {
                v1_sharers.push(m);
            }
            members.push(member);
        }
        Ok(Segment::Parallel(ParallelGroup { members }))
    }

    /// Step 3: merge micrographs — independent ones in parallel, dependent
    /// ones sequential with a warning.
    pub(super) fn merge_micrographs(
        &mut self,
        micrographs: Vec<Micrograph>,
    ) -> Result<Vec<Segment>, CompileError> {
        if micrographs.len() <= 1 {
            return Ok(micrographs.into_iter().flat_map(|m| m.segments).collect());
        }
        // Union profile per micrograph for the pairwise dependency check.
        let unions: Vec<ActionProfile> = micrographs
            .iter()
            .map(|mg| union_profile(&self.nodes, &mg.nodes))
            .collect();
        // A micrograph can join the parallel composition only when it is a
        // simple chain and independent (no-copy both directions) of every
        // other parallel-composed micrograph.
        let mut parallel_idx: Vec<usize> = Vec::new();
        let mut sequential_idx: Vec<usize> = Vec::new();
        'outer: for i in 0..micrographs.len() {
            if !micrographs[i].is_chain() {
                sequential_idx.push(i);
                continue;
            }
            for &j in &parallel_idx {
                let fwd = identify(&unions[j], &unions[i], &self.dt, self.opts.identify);
                let back = identify(&unions[i], &unions[j], &self.dt, self.opts.identify);
                let independent = fwd.verdict() == crate::deps::Parallelism::ParallelizableNoCopy
                    && back.verdict() == crate::deps::Parallelism::ParallelizableNoCopy;
                if !independent {
                    self.warnings.push(CompileWarning::MicrographDependency {
                        a: self.nodes[micrographs[j].nodes[0]].name.clone(),
                        b: self.nodes[micrographs[i].nodes[0]].name.clone(),
                    });
                    sequential_idx.push(i);
                    continue 'outer;
                }
            }
            parallel_idx.push(i);
        }
        let mut segments = Vec::new();
        match parallel_idx.len() {
            0 => {}
            1 => segments.extend(micrographs[parallel_idx[0]].segments.clone()),
            _ => {
                let members: Vec<Member> = parallel_idx
                    .iter()
                    .enumerate()
                    .map(|(rank, &i)| {
                        let path = micrographs[i].chain_nodes();
                        let drop_capable = path.iter().any(|&n| self.nodes[n].profile.has_drop());
                        let writes = path.iter().fold(nfp_packet::FieldMask::EMPTY, |m, &n| {
                            m.union(self.nodes[n].profile.write_mask())
                        });
                        Member {
                            path,
                            version: VERSION_ORIGINAL,
                            copy: CopyKind::None,
                            merge_ops: Vec::new(),
                            priority: rank as u32,
                            drop_capable,
                            writes,
                        }
                    })
                    .collect();
                segments.push(Segment::Parallel(ParallelGroup { members }));
            }
        }
        for i in sequential_idx {
            segments.extend(micrographs[i].segments.clone());
        }
        Ok(segments)
    }
}

/// Merge operations folding `version`'s modifications into v1: one
/// `modify` per written field, plus header grafts for Add/Rm NFs.
fn merge_ops_for(profile: &ActionProfile, version: u8) -> Vec<MergeOp> {
    let mut ops: Vec<MergeOp> = profile
        .write_mask()
        .iter()
        .map(|field| MergeOp::Modify {
            field,
            from_version: version,
        })
        .collect();
    if profile.has_add_rm() {
        if let Some(header) = profile.add_rm_header {
            ops.push(MergeOp::AddHeader {
                header,
                from_version: version,
            });
        }
    }
    ops
}

fn union_profile(nodes: &[GraphNode], members: &[NodeId]) -> ActionProfile {
    let mut p = ActionProfile::new("micrograph");
    for &n in members {
        for &a in &nodes[n].profile.actions {
            p.push(a);
        }
        if p.add_rm_header.is_none() {
            p.add_rm_header = nodes[n].profile.add_rm_header;
        }
    }
    p
}
