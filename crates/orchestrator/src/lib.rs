//! # nfp-orchestrator
//!
//! The NFP **orchestrator** (paper §4): it "takes the NFP policies as input,
//! identifies NF dependencies, and automatically compiles policies into high
//! performance service graphs possibly with parallel NFs", with the twin
//! optimization goals of *maximum parallelism* and *minimal resource
//! overhead*.
//!
//! Pipeline (paper Figure 2):
//!
//! ```text
//! Policy ──transform──▶ Intermediate Representations ──compile──▶
//!        Micrographs (Single NF | Tree | Plain Parallelism) ──merge──▶
//!        Final service graph + Classification/Forwarding/Merging tables
//! ```
//!
//! Module map:
//!
//! * [`action`] — the NF action model: `Read`/`Write` over packet fields,
//!   `AddRm` (header addition/removal) and `Drop`, plus [`action::ActionProfile`].
//! * [`table2`] — the built-in NF action table (paper Table 2) with
//!   deployment percentages, and the profile [`table2::Registry`] new NFs
//!   are registered into (§5.4).
//! * [`deps`] — the action dependency table (paper Table 3).
//! * [`alg1`] — the NF Parallelism Identification algorithm (paper
//!   Algorithm 1), including OP#1 *Dirty Memory Reusing*.
//! * [`census`](mod@census) — reproduces the paper's §4.3 statistic ("53.8% NF pairs
//!   can work in parallel; 41.5% without extra resource overhead").
//! * [`graph`] — the compiled service-graph representation.
//! * [`compile`](mod@compile) — the §4.4 compiler, as explicit passes
//!   (profile collection → transform → micrographs → emission).
//! * [`tables`] — generation of the classification, forwarding and merging
//!   tables the infrastructure installs (§4.4.3/§5).
//! * [`program`] — the sealed [`program::Program`] artifact handed to the
//!   dataplane: validated tables + stage wiring plan + per-position field
//!   masks + worst-case pool footprint.
//! * [`modular`] — OpenBox-style block-level parallelism merge (paper §7,
//!   Figure 15).
//! * [`partition`] — cross-server graph partitioning sketch (paper §7).

#![warn(missing_docs)]

pub mod action;
pub mod alg1;
pub mod census;
pub mod compile;
pub mod deps;
pub mod graph;
pub mod modular;
pub mod partition;
pub mod program;
pub mod table2;
pub mod tables;

pub use action::{Action, ActionKind, ActionProfile, FailurePolicy, HeaderKind};
pub use alg1::{identify, identify_in, IdentifyOptions, PairAnalysis, PairContext};
pub use census::{census, CensusReport};
pub use compile::{compile, CompileError, CompileOptions, CompileWarning, Compiled};
pub use deps::{DependencyTable, Parallelism};
pub use graph::{NodeId, ParallelGroup, Segment, ServiceGraph};
pub use program::{Program, ProgramError, ProgramUpdate, Stage, UpdateRejection, WiringPlan};
pub use table2::Registry;
