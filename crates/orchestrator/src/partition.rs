//! Cross-server graph partitioning — the paper's §7 scalability sketch.
//!
//! "NFP could partition the service graph onto multiple servers obeying:
//! each server sends only one copy of a packet to the next server."
//!
//! Because our compiled graphs merge every parallel group back to a single
//! v1 packet at the group's merger, *segment boundaries* are exactly the
//! points where one logical packet exists — so any cut along segment
//! boundaries satisfies the one-copy-per-hop rule. The partitioner packs
//! consecutive segments onto servers under a per-server NF budget (one NF
//! per core, plus the classifier and merger cores the paper accounts for).

use crate::graph::{Segment, ServiceGraph};

/// Placement of a contiguous run of segments on one server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerPlan {
    /// Segment index range (half-open) hosted by this server.
    pub segments: core::ops::Range<usize>,
    /// NF instances hosted (cores for NFs).
    pub nf_count: usize,
    /// Extra cores: 1 classifier (first server only) + 1 merger when any
    /// hosted segment is parallel.
    pub support_cores: usize,
}

/// Partitioning failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// One segment alone exceeds the per-server NF budget; it cannot be
    /// split without violating the one-copy rule.
    SegmentTooLarge {
        /// Offending segment index.
        segment: usize,
        /// NFs it contains.
        nfs: usize,
    },
    /// The NF budget is zero.
    ZeroBudget,
}

impl core::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PartitionError::SegmentTooLarge { segment, nfs } => write!(
                f,
                "segment {segment} hosts {nfs} NFs, exceeding the per-server budget"
            ),
            PartitionError::ZeroBudget => write!(f, "per-server NF budget must be positive"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Pack segments onto servers, first-fit, never splitting a segment.
pub fn partition(
    graph: &ServiceGraph,
    nfs_per_server: usize,
) -> Result<Vec<ServerPlan>, PartitionError> {
    if nfs_per_server == 0 {
        return Err(PartitionError::ZeroBudget);
    }
    let sizes: Vec<usize> = graph.segments.iter().map(|s| s.nodes().len()).collect();
    for (i, &n) in sizes.iter().enumerate() {
        if n > nfs_per_server {
            return Err(PartitionError::SegmentTooLarge { segment: i, nfs: n });
        }
    }
    let mut plans = Vec::new();
    let mut start = 0usize;
    let mut count = 0usize;
    for (i, &n) in sizes.iter().enumerate() {
        if count + n > nfs_per_server {
            plans.push(make_plan(graph, start..i, plans.is_empty()));
            start = i;
            count = 0;
        }
        count += n;
    }
    if start < graph.segments.len() || plans.is_empty() {
        plans.push(make_plan(
            graph,
            start..graph.segments.len(),
            plans.is_empty(),
        ));
    }
    Ok(plans)
}

fn make_plan(graph: &ServiceGraph, range: core::ops::Range<usize>, first: bool) -> ServerPlan {
    let nf_count = graph.segments[range.clone()]
        .iter()
        .map(|s| s.nodes().len())
        .sum();
    let has_parallel = graph.segments[range.clone()]
        .iter()
        .any(|s| matches!(s, Segment::Parallel(_)));
    ServerPlan {
        segments: range,
        nf_count,
        support_cores: usize::from(first) + usize::from(has_parallel),
    }
}

/// Inter-server packet transfers per packet: exactly one per boundary —
/// the property the paper's rule demands.
pub fn inter_server_copies(plans: &[ServerPlan]) -> usize {
    plans.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::table2::Registry;
    use nfp_policy::Policy;

    fn graph() -> ServiceGraph {
        // VPN -> [Monitor | Firewall] -> LoadBalancer
        let policy = Policy::from_chain(["VPN", "Monitor", "Firewall", "LoadBalancer"]);
        compile(
            &policy,
            &Registry::paper_table2(),
            &[],
            &CompileOptions::default(),
        )
        .unwrap()
        .graph
    }

    #[test]
    fn single_server_when_budget_fits() {
        let plans = partition(&graph(), 8).unwrap();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].nf_count, 4);
        assert_eq!(inter_server_copies(&plans), 0);
        assert_eq!(plans[0].support_cores, 2); // classifier + merger
    }

    #[test]
    fn splits_at_segment_boundaries_only() {
        let plans = partition(&graph(), 2).unwrap();
        assert!(plans.len() >= 2);
        // Contiguous, non-overlapping coverage.
        let mut next = 0;
        for p in &plans {
            assert_eq!(p.segments.start, next);
            next = p.segments.end;
            assert!(p.nf_count <= 2);
        }
        assert_eq!(next, graph().segments.len());
        assert_eq!(inter_server_copies(&plans), plans.len() - 1);
    }

    #[test]
    fn oversized_parallel_segment_is_an_error() {
        let err = partition(&graph(), 1).unwrap_err();
        assert!(matches!(err, PartitionError::SegmentTooLarge { .. }));
    }

    #[test]
    fn zero_budget_rejected() {
        assert_eq!(
            partition(&graph(), 0).unwrap_err(),
            PartitionError::ZeroBudget
        );
    }
}
