//! The action dependency table (DT) — paper Table 3.
//!
//! For `Order(NF1, before, NF2)` and an action pair `(a1, a2)` (a1 performed
//! by NF1, a2 by NF2), the table answers whether the pair permits parallel
//! execution, and if so whether a packet copy is required — all under the
//! **result correctness principle**: "Two NFs can work in parallel, if
//! parallel execution of the two NFs results in the same processed packet
//! and NF internal states as the sequential service composition."
//!
//! Colour key from the paper's Table 3:
//! * green — parallelizable, no copy;
//! * orange — parallelizable, copy needed;
//! * gray — not parallelizable.
//!
//! The read-write and write-write cells are *field-refined* by Algorithm 1
//! (green when the fields differ — Dirty Memory Reusing — orange when they
//! collide); those two cells therefore never reach this table at lookup
//! time, but we still record their unrefined colour (orange) for
//! completeness and for the census's OP#1-off mode.

use crate::action::ActionKind;

/// Verdict for one action pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Gray cell: the pair forces sequential composition.
    NotParallelizable,
    /// Green cell: parallel execution needs no packet copy.
    ParallelizableNoCopy,
    /// Orange cell: parallel execution needs a packet copy (and a merge).
    ParallelizableWithCopy,
}

/// The 4×4 dependency table, indexed by `(a1.kind, a2.kind)` with NF1
/// ordered before NF2.
#[derive(Debug, Clone)]
pub struct DependencyTable {
    cells: [[Parallelism; 4]; 4],
}

fn idx(k: ActionKind) -> usize {
    match k {
        ActionKind::Read => 0,
        ActionKind::Write => 1,
        ActionKind::AddRm => 2,
        ActionKind::Drop => 3,
    }
}

impl DependencyTable {
    /// The paper's Table 3.
    ///
    /// Rationale per cell (`row = NF1's action, column = NF2's action`):
    ///
    /// | a1\a2   | Read | Write | Add/Rm | Drop |
    /// |---------|------|-------|--------|------|
    /// | Read    | green (reads commute) | orange¹ (NF1 must see the pre-write value) | orange (NF2 restructures its own copy) | green (drop propagates via nil packets) |
    /// | Write   | gray (NF2 must see NF1's write) | orange¹ (later write wins at merge) | orange | green |
    /// | Add/Rm  | gray | gray | gray | gray (NF2's verdict may depend on the added/removed header) |
    /// | Drop    | gray² | gray² | gray² | gray² |
    ///
    /// ¹ field-refined by Algorithm 1 (Dirty Memory Reusing).
    /// ² when NF1 may drop, running NF2 in parallel lets NF2's *internal
    ///   state* observe packets that sequential composition would have
    ///   discarded — violating the result correctness principle. This is
    ///   also what the paper's own compiled graphs show: the north-south
    ///   chain does **not** parallelize `Order(Firewall, before, LB)` (0%
    ///   reported overhead) even though read/write analysis alone would
    ///   permit it with a copy. Operators can still force drop-capable NFs
    ///   parallel with an explicit `Priority` rule, which supplies the
    ///   conflict resolution (paper §3, `Priority(IPS > Firewall)`);
    ///   Algorithm 1 applies that override, not this table.
    pub fn paper_table3() -> Self {
        use ActionKind::*;
        use Parallelism::*;
        let mut t = Self {
            cells: [[ParallelizableNoCopy; 4]; 4],
        };
        let mut set = |a: ActionKind, b: ActionKind, v: Parallelism| {
            t.cells[idx(a)][idx(b)] = v;
        };
        set(Read, Read, ParallelizableNoCopy);
        set(Read, Write, ParallelizableWithCopy);
        set(Read, AddRm, ParallelizableWithCopy);
        set(Read, Drop, ParallelizableNoCopy);
        set(Write, Read, NotParallelizable);
        set(Write, Write, ParallelizableWithCopy);
        set(Write, AddRm, ParallelizableWithCopy);
        set(Write, Drop, ParallelizableNoCopy);
        set(AddRm, Read, NotParallelizable);
        set(AddRm, Write, NotParallelizable);
        set(AddRm, AddRm, NotParallelizable);
        set(AddRm, Drop, NotParallelizable);
        set(Drop, Read, NotParallelizable);
        set(Drop, Write, NotParallelizable);
        set(Drop, AddRm, NotParallelizable);
        set(Drop, Drop, NotParallelizable);
        t
    }

    /// Verdict for `(a1, a2)` with a1's NF ordered before a2's NF.
    pub fn lookup(&self, a1: ActionKind, a2: ActionKind) -> Parallelism {
        self.cells[idx(a1)][idx(a2)]
    }
}

impl Default for DependencyTable {
    fn default() -> Self {
        Self::paper_table3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ActionKind::*;
    use Parallelism::*;

    #[test]
    fn paper_examples_hold() {
        let t = DependencyTable::paper_table3();
        // "suppose NF1 reads the packet header, and NF2 later modifies the
        // same header field … we could copy the packets".
        assert_eq!(t.lookup(Read, Write), ParallelizableWithCopy);
        // "if NF1 first writes a packet header and later NF2 reads this
        // header … the two NFs should work in sequence".
        assert_eq!(t.lookup(Write, Read), NotParallelizable);
        // "suppose NF1 and NF2 both read the packet … the two NFs can read
        // the same packet simultaneously".
        assert_eq!(t.lookup(Read, Read), ParallelizableNoCopy);
    }

    #[test]
    fn drop_row_is_gray_but_drop_column_tolerates_readers() {
        let t = DependencyTable::paper_table3();
        for k in ActionKind::ALL {
            assert_eq!(t.lookup(Drop, k), NotParallelizable, "(drop,{k})");
        }
        // NF2 dropping is fine: NF1 would have processed the packet first
        // under sequential composition anyway.
        assert_eq!(t.lookup(Read, Drop), ParallelizableNoCopy);
        assert_eq!(t.lookup(Write, Drop), ParallelizableNoCopy);
    }

    #[test]
    fn addrm_row_is_gray() {
        let t = DependencyTable::paper_table3();
        for k in ActionKind::ALL {
            assert_eq!(t.lookup(AddRm, k), NotParallelizable, "(add/rm,{k})");
        }
    }

    #[test]
    fn table_is_asymmetric_where_order_matters() {
        let t = DependencyTable::paper_table3();
        assert_ne!(t.lookup(Read, Write), t.lookup(Write, Read));
        assert_ne!(t.lookup(Read, AddRm), t.lookup(AddRm, Read));
    }
}
