//! The compiled service graph.
//!
//! A compiled graph is a sequence of **segments** executed in order; each
//! segment is either a single NF or a *parallel group* whose members run
//! concurrently and whose outputs the merger folds back together. This is
//! exactly the shape of every graph in the paper (Figures 1(b), 2, 13, 14):
//! heads/tails pinned by `Position` rules, trees (a sequential root feeding
//! parallel leaves) and plain parallelism all flatten to segment sequences.
//!
//! The *equivalent chain length* — the paper's measure of how much latency
//! a graph saves — is simply the number of segments.

use crate::action::ActionProfile;
use nfp_packet::meta::VERSION_ORIGINAL;
use nfp_packet::{FieldId, FieldMask};
use nfp_policy::NfName;

/// Index of a node in [`ServiceGraph::nodes`].
pub type NodeId = usize;

/// A deployed NF instance in the graph.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Instance name (as written in policies).
    pub name: NfName,
    /// The action profile the orchestrator used for this NF.
    pub profile: ActionProfile,
}

pub use crate::action::HeaderKind;

/// One merging operation (paper §5.3): how to fold a copy's modifications
/// into the original version `v1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// `modify(v1.A, vX.A)` — overwrite field `A` of v1 with vX's value.
    Modify {
        /// The field to overwrite.
        field: FieldId,
        /// The copy version supplying the new value.
        from_version: u8,
    },
    /// `add(vX.B, after, v1.IP)` — graft a header added by vX into v1.
    AddHeader {
        /// Which header to graft.
        header: HeaderKind,
        /// The copy version carrying the header.
        from_version: u8,
    },
    /// `remove(v1.C)` — drop a header from v1.
    RemoveHeader {
        /// Which header to remove.
        header: HeaderKind,
    },
}

/// How a parallel-group member's packet copy is materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CopyKind {
    /// No copy: the member shares the original v1 packet.
    #[default]
    None,
    /// OP#2 **Header-Only Copying**: only the headers (≈64 B for TCP) are
    /// copied; valid when the member touches no payload bytes.
    HeaderOnly,
    /// Full copy, required when the member reads or writes the payload.
    Full,
}

/// One branch of a parallel group.
///
/// A member is usually a single NF; when the final-graph merge places whole
/// independent micrographs side by side, a member is a *chain* of NFs
/// traversed sequentially within the branch.
#[derive(Debug, Clone)]
pub struct Member {
    /// The NFs on this branch, in traversal order.
    pub path: Vec<NodeId>,
    /// Packet copy version this branch processes (1 = shares the original).
    pub version: u8,
    /// How this branch's copy is materialized ([`CopyKind::None`] iff the
    /// version is 1).
    pub copy: CopyKind,
    /// Operations folding this branch's version into v1 at the merger
    /// (empty for v1 sharers; theirs land in place).
    pub merge_ops: Vec<MergeOp>,
    /// Conflict-resolution priority; higher wins (paper `Priority` rules;
    /// Order-derived parallelism gives "the NF with the back order" the
    /// higher priority).
    pub priority: u32,
    /// True if some NF on this branch may drop packets.
    pub drop_capable: bool,
    /// Union of fields written on this branch (used by the runtime to
    /// scope Dirty-Memory-Reusing writes).
    pub writes: FieldMask,
}

impl Member {
    /// Single-NF branch sharing the original copy.
    pub fn solo(node: NodeId) -> Self {
        Self {
            path: vec![node],
            version: VERSION_ORIGINAL,
            copy: CopyKind::None,
            merge_ops: Vec::new(),
            priority: 0,
            drop_capable: false,
            writes: FieldMask::EMPTY,
        }
    }
}

/// A parallel segment: fan out → process concurrently → merge.
#[derive(Debug, Clone, Default)]
pub struct ParallelGroup {
    /// The branches, in ascending priority order.
    pub members: Vec<Member>,
}

impl ParallelGroup {
    /// Parallelism degree (number of branches).
    pub fn degree(&self) -> usize {
        self.members.len()
    }

    /// Number of packet copies created at fan-out (distinct versions > 1).
    pub fn copies(&self) -> usize {
        let mut versions: Vec<u8> = self
            .members
            .iter()
            .map(|m| m.version)
            .filter(|&v| v != VERSION_ORIGINAL)
            .collect();
        versions.sort_unstable();
        versions.dedup();
        versions.len()
    }

    /// Total packet arrivals the merger expects for this group — the
    /// Classification Table's *total count*. Every member forwards its
    /// copy to the merger independently.
    pub fn expected_arrivals(&self) -> usize {
        self.members.len()
    }

    /// Merge operations across all members, ordered by member priority
    /// ascending so higher-priority modifications land last and win.
    pub fn merge_ops(&self) -> Vec<MergeOp> {
        let mut idx: Vec<usize> = (0..self.members.len()).collect();
        idx.sort_by_key(|&i| self.members[i].priority);
        idx.into_iter()
            .flat_map(|i| self.members[i].merge_ops.iter().copied())
            .collect()
    }
}

/// One step of the compiled graph.
#[derive(Debug, Clone)]
pub enum Segment {
    /// A single NF processed in place.
    Sequential(NodeId),
    /// A parallel group with fan-out, concurrent processing and merge.
    Parallel(ParallelGroup),
}

impl Segment {
    /// All node ids in this segment.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Segment::Sequential(n) => vec![*n],
            Segment::Parallel(g) => g.members.iter().flat_map(|m| m.path.clone()).collect(),
        }
    }
}

/// A compiled service graph.
#[derive(Debug, Clone, Default)]
pub struct ServiceGraph {
    /// All NF instances.
    pub nodes: Vec<GraphNode>,
    /// Execution segments, in order.
    pub segments: Vec<Segment>,
}

impl ServiceGraph {
    /// The paper's *equivalent chain length*: sequential hops a packet
    /// experiences (e.g. Figure 1(b) has length 3 instead of 4).
    pub fn equivalent_chain_length(&self) -> usize {
        self.segments.len()
    }

    /// Total number of NF instances.
    pub fn nf_count(&self) -> usize {
        self.nodes.len()
    }

    /// Largest parallel degree in the graph.
    pub fn max_degree(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Sequential(_) => 1,
                Segment::Parallel(g) => g.degree(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Packet copies created per packet traversal (paper §6.3.1 resource
    /// overhead driver).
    pub fn copies_per_packet(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Sequential(_) => 0,
                Segment::Parallel(g) => g.copies(),
            })
            .sum()
    }

    /// Find a node id by instance name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name.as_str() == name)
    }

    /// Structural validation: every node appears in exactly one segment
    /// position, versions within a group are consistent, v1 exists in every
    /// group, and member priorities are unique per group.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.nodes.len()];
        let mut mark = |id: NodeId| -> Result<(), String> {
            if id >= seen.len() {
                return Err(format!("node id {id} out of range"));
            }
            if seen[id] {
                return Err(format!("node {id} appears twice"));
            }
            seen[id] = true;
            Ok(())
        };
        for seg in &self.segments {
            match seg {
                Segment::Sequential(n) => mark(*n)?,
                Segment::Parallel(g) => {
                    if g.members.len() < 2 {
                        return Err("parallel group with fewer than 2 members".into());
                    }
                    if !g.members.iter().any(|m| m.version == VERSION_ORIGINAL) {
                        return Err("parallel group without a v1 member".into());
                    }
                    let mut prios: Vec<u32> = g.members.iter().map(|m| m.priority).collect();
                    prios.sort_unstable();
                    prios.dedup();
                    if prios.len() != g.members.len() {
                        return Err("duplicate member priorities in parallel group".into());
                    }
                    for m in &g.members {
                        if m.path.is_empty() {
                            return Err("empty member path".into());
                        }
                        if (m.version == VERSION_ORIGINAL) != (m.copy == CopyKind::None) {
                            return Err("copy kind inconsistent with version".into());
                        }
                        if m.version != VERSION_ORIGINAL
                            && m.merge_ops.is_empty()
                            && !m.writes.is_empty()
                        {
                            return Err("copied member writes fields but has no merge ops".into());
                        }
                        for &n in &m.path {
                            mark(n)?;
                        }
                    }
                }
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(format!("node {missing} not placed in any segment"));
        }
        Ok(())
    }

    /// Human-readable one-line structure, e.g. `VPN -> [Monitor | FW] -> LB`.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push_str(" -> ");
            }
            match seg {
                Segment::Sequential(n) => out.push_str(self.nodes[*n].name.as_str()),
                Segment::Parallel(g) => {
                    out.push('[');
                    for (j, m) in g.members.iter().enumerate() {
                        if j > 0 {
                            out.push_str(" | ");
                        }
                        for (k, n) in m.path.iter().enumerate() {
                            if k > 0 {
                                out.push('>');
                            }
                            out.push_str(self.nodes[*n].name.as_str());
                        }
                        if m.version != VERSION_ORIGINAL {
                            out.push_str(&format!("(v{})", m.version));
                        }
                    }
                    out.push(']');
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str) -> GraphNode {
        GraphNode {
            name: NfName::new(name),
            profile: ActionProfile::new(name),
        }
    }

    fn two_member_group(a: NodeId, b: NodeId) -> ParallelGroup {
        ParallelGroup {
            members: vec![
                Member {
                    priority: 0,
                    ..Member::solo(a)
                },
                Member {
                    priority: 1,
                    version: 2,
                    copy: CopyKind::HeaderOnly,
                    merge_ops: vec![MergeOp::Modify {
                        field: FieldId::Dip,
                        from_version: 2,
                    }],
                    writes: FieldMask::single(FieldId::Dip),
                    ..Member::solo(b)
                },
            ],
        }
    }

    #[test]
    fn figure1b_shape() {
        // VPN -> [Monitor | FW] -> LB
        let g = ServiceGraph {
            nodes: vec![node("VPN"), node("Monitor"), node("FW"), node("LB")],
            segments: vec![
                Segment::Sequential(0),
                Segment::Parallel(ParallelGroup {
                    members: vec![
                        Member::solo(1),
                        Member {
                            priority: 1,
                            drop_capable: true,
                            ..Member::solo(2)
                        },
                    ],
                }),
                Segment::Sequential(3),
            ],
        };
        g.validate().unwrap();
        assert_eq!(g.equivalent_chain_length(), 3);
        assert_eq!(g.copies_per_packet(), 0);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.describe(), "VPN -> [Monitor | FW] -> LB");
    }

    #[test]
    fn copies_counted_per_group() {
        let g = ServiceGraph {
            nodes: vec![node("A"), node("B")],
            segments: vec![Segment::Parallel(two_member_group(0, 1))],
        };
        g.validate().unwrap();
        assert_eq!(g.copies_per_packet(), 1);
        assert_eq!(g.describe(), "[A | B(v2)]");
    }

    #[test]
    fn merge_ops_ordered_by_priority() {
        let mut grp = two_member_group(0, 1);
        grp.members[0].merge_ops = vec![MergeOp::RemoveHeader {
            header: HeaderKind::AuthHeader,
        }];
        grp.members[0].priority = 5; // now highest
        let ops = grp.merge_ops();
        // Priority 1 member's op first, priority 5 member's op last.
        assert!(matches!(ops[0], MergeOp::Modify { .. }));
        assert!(matches!(ops[1], MergeOp::RemoveHeader { .. }));
    }

    #[test]
    fn validate_rejects_duplicates_and_gaps() {
        let g = ServiceGraph {
            nodes: vec![node("A"), node("B")],
            segments: vec![Segment::Sequential(0), Segment::Sequential(0)],
        };
        assert!(g.validate().is_err());
        let g = ServiceGraph {
            nodes: vec![node("A"), node("B")],
            segments: vec![Segment::Sequential(0)],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_copy_without_merge_ops() {
        let mut grp = two_member_group(0, 1);
        grp.members[1].merge_ops.clear();
        let g = ServiceGraph {
            nodes: vec![node("A"), node("B")],
            segments: vec![Segment::Parallel(grp)],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_requires_v1() {
        let mut grp = two_member_group(0, 1);
        grp.members[0].version = 3;
        let g = ServiceGraph {
            nodes: vec![node("A"), node("B")],
            segments: vec![Segment::Parallel(grp)],
        };
        assert!(g.validate().is_err());
    }
}
