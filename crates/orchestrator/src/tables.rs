//! Runtime table generation — the tail of §4.4.3 and the table formats of
//! §5 (Figure 4).
//!
//! "Based on the final graph structure, NF dependencies, and NF priorities,
//! we create a **classification table** that records how to direct a packet
//! to its corresponding service chain, a **forwarding table** that records
//! how to steer different packet copies, and a **merging table** that
//! stores how to merge packet copies."
//!
//! The infrastructure (nfp-dataplane) installs:
//! * the classification entry into the classifier,
//! * the per-NF forwarding-table slices into each NF runtime (via the
//!   chaining manager: "the chaining Manager splits the global table and
//!   installs the forwarding rules to each NF runtime"),
//! * the merge specs into the mergers.
//!
//! One generalization over the paper: the paper's evaluated graphs merge
//! once, at the end; our graphs may contain several parallel segments, so
//! merge specs are indexed by segment and a merger forwards its result to
//! the next segment's entry actions.

use crate::action::FailurePolicy;
use crate::graph::{CopyKind, MergeOp, NodeId, Segment, ServiceGraph};
use nfp_packet::meta::VERSION_ORIGINAL;

/// Where a forwarded packet reference goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The receive ring of an NF.
    Nf(NodeId),
    /// The merger serving the given parallel segment.
    Merger(usize),
    /// Out of the service graph (the last hop's `output` action).
    Output,
}

/// One forwarding-table action (paper §5.2 defines `ignore`, `distribute`,
/// `copy` and `output`; `ignore`/nil handling is a runtime behaviour rather
/// than a table row, so the static tables carry the other three).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtAction {
    /// `copy(version1, version2)`: copy the packet tagged `from` into a new
    /// packet tagged `to` ("we only copy packet headers and set the packet
    /// length field" — `kind` says whether OP#2 applies).
    Copy {
        /// Source version.
        from: u8,
        /// Version tag for the new copy.
        to: u8,
        /// Header-only (OP#2) or full copy.
        kind: CopyKind,
    },
    /// `distribute(version, targets)`: send the reference of `version` to
    /// one or more targets without copying.
    Distribute {
        /// Which copy to send.
        version: u8,
        /// Destinations (fan-out to several parallel NFs retains the
        /// reference count accordingly).
        targets: Vec<Target>,
    },
    /// `output(version)`: the packet has traversed the whole graph.
    Output {
        /// Which copy leaves the graph.
        version: u8,
    },
}

/// What one parallel group's drop conflict resolution needs to know about
/// each member (paper §3's `Priority` semantics at merge time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberSpec {
    /// Version the member's packets carry.
    pub version: u8,
    /// Conflict priority (higher wins).
    pub priority: u32,
    /// True if the member may signal a drop (nil packet).
    pub drop_capable: bool,
    /// What a deadline-expired merge assumes about this member when its
    /// copy never arrived: `FailClosed` if *any* NF on the member's
    /// branch fails closed (the branch's verdict cannot be defaulted to
    /// "pass"), `FailOpen` otherwise.
    pub on_failure: FailurePolicy,
    /// True if any NF on the member's branch keeps per-flow state — such
    /// a branch participates in state export/import during a shard-count
    /// change.
    pub stateful: bool,
}

/// Merge specification for one parallel segment — the Classification
/// Table's "Total Count" and "MOs" columns plus drop resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSpec {
    /// Which parallel segment this spec serves.
    pub segment: usize,
    /// Packet arrivals to collect before merging (CT "total count").
    pub total_count: usize,
    /// Merge operations, already ordered so higher-priority modifications
    /// land last.
    pub ops: Vec<MergeOp>,
    /// Per-member conflict metadata.
    pub members: Vec<MemberSpec>,
    /// What to do with the merged v1 packet.
    pub next: Vec<FtAction>,
}

/// How an NF's runtime hands the packet to the NF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessMode {
    /// The NF is the packet's sole owner (sequential segments, copied
    /// parallel members): full structural access.
    #[default]
    Exclusive,
    /// The packet is concurrently visible to other parallel NFs (shared
    /// v1 under Dirty Memory Reusing): field-scoped access only.
    SharedField,
}

/// What an NF's runtime does when the NF votes to drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropBehavior {
    /// Sequential position: the packet simply leaves the graph.
    #[default]
    Discard,
    /// Parallel member: "the NF runtime sends a nil packet to deliver the
    /// dropping intention to the merger" (§5.2).
    NilToMerger {
        /// The parallel segment whose merger must be told.
        segment: usize,
        /// This member's conflict priority, carried on the nil packet so
        /// the merger can resolve drop disagreements.
        priority: u32,
    },
}

/// Per-NF runtime configuration — the slice of the global tables the
/// chaining manager installs into one NF runtime.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NfConfig {
    /// Forwarding actions after the NF processes a packet.
    pub actions: Vec<FtAction>,
    /// How the runtime exposes the packet to the NF.
    pub access: AccessMode,
    /// Drop handling at this graph position.
    pub on_drop: DropBehavior,
    /// What the runtime does with traffic once this NF has failed
    /// (panicked or been declared stalled by the watchdog).
    pub on_failure: FailurePolicy,
    /// True when the NF keeps per-flow state (from
    /// [`crate::action::ActionProfile::per_flow_state`]): the engine
    /// exports/imports this NF's flow snapshots across rescales.
    pub stateful: bool,
}

/// The complete table set for one service graph (one Classification Table
/// entry plus the global forwarding table, pre-split per NF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphTables {
    /// Match ID identifying this graph in packet metadata.
    pub mid: u32,
    /// Actions the classifier runs on an arriving packet (CT "action").
    pub entry_actions: Vec<FtAction>,
    /// Per-NF runtime configuration (indexed by `NodeId`).
    pub nf_configs: Vec<NfConfig>,
    /// Merge specs, one per parallel segment, keyed by segment index.
    pub merge_specs: Vec<MergeSpec>,
}

impl GraphTables {
    /// The merge spec serving segment `segment`, if that segment is
    /// parallel.
    pub fn merge_spec_for(&self, segment: usize) -> Option<&MergeSpec> {
        self.merge_specs.iter().find(|m| m.segment == segment)
    }
}

/// Generate the table set for `graph` under match ID `mid`.
pub fn generate(graph: &ServiceGraph, mid: u32) -> GraphTables {
    let mut nf_configs: Vec<NfConfig> = vec![NfConfig::default(); graph.nodes.len()];
    let mut merge_specs = Vec::new();

    // Entry actions for segment `i` (what the previous hop — classifier,
    // sequential NF, or merger — executes to start that segment).
    let entry = |i: usize| -> Vec<FtAction> {
        if i >= graph.segments.len() {
            return vec![FtAction::Output {
                version: VERSION_ORIGINAL,
            }];
        }
        match &graph.segments[i] {
            Segment::Sequential(n) => vec![FtAction::Distribute {
                version: VERSION_ORIGINAL,
                targets: vec![Target::Nf(*n)],
            }],
            Segment::Parallel(grp) => {
                let mut actions = Vec::new();
                // Copies first, then distribution, exactly like Figure 4's
                // FT row `Copy(v1,v2); Distribute(v1,[4,6]); Distribute(v2,5)`.
                for m in &grp.members {
                    if m.version != VERSION_ORIGINAL {
                        actions.push(FtAction::Copy {
                            from: VERSION_ORIGINAL,
                            to: m.version,
                            kind: m.copy,
                        });
                    }
                }
                let v1_targets: Vec<Target> = grp
                    .members
                    .iter()
                    .filter(|m| m.version == VERSION_ORIGINAL)
                    .map(|m| Target::Nf(m.path[0]))
                    .collect();
                if !v1_targets.is_empty() {
                    actions.push(FtAction::Distribute {
                        version: VERSION_ORIGINAL,
                        targets: v1_targets,
                    });
                }
                for m in &grp.members {
                    if m.version != VERSION_ORIGINAL {
                        actions.push(FtAction::Distribute {
                            version: m.version,
                            targets: vec![Target::Nf(m.path[0])],
                        });
                    }
                }
                actions
            }
        }
    };

    for (i, seg) in graph.segments.iter().enumerate() {
        match seg {
            Segment::Sequential(n) => {
                nf_configs[*n] = NfConfig {
                    actions: entry(i + 1),
                    access: AccessMode::Exclusive,
                    on_drop: DropBehavior::Discard,
                    on_failure: graph.nodes[*n].profile.failure_policy(),
                    stateful: graph.nodes[*n].profile.per_flow_state,
                };
            }
            Segment::Parallel(grp) => {
                let v1_sharers = grp
                    .members
                    .iter()
                    .filter(|m| m.version == VERSION_ORIGINAL)
                    .count();
                for m in &grp.members {
                    // A copied member owns its copy exclusively; v1 members
                    // share when more than one of them holds the original.
                    let access = if m.version != VERSION_ORIGINAL || v1_sharers <= 1 {
                        AccessMode::Exclusive
                    } else {
                        AccessMode::SharedField
                    };
                    let on_drop = DropBehavior::NilToMerger {
                        segment: i,
                        priority: m.priority,
                    };
                    // Intra-branch hops.
                    for w in m.path.windows(2) {
                        nf_configs[w[0]] = NfConfig {
                            actions: vec![FtAction::Distribute {
                                version: m.version,
                                targets: vec![Target::Nf(w[1])],
                            }],
                            access,
                            on_drop,
                            on_failure: graph.nodes[w[0]].profile.failure_policy(),
                            stateful: graph.nodes[w[0]].profile.per_flow_state,
                        };
                    }
                    // Branch tail → merger for this segment.
                    let tail = *m.path.last().expect("validated non-empty path");
                    nf_configs[tail] = NfConfig {
                        actions: vec![FtAction::Distribute {
                            version: m.version,
                            targets: vec![Target::Merger(i)],
                        }],
                        access,
                        on_drop,
                        on_failure: graph.nodes[tail].profile.failure_policy(),
                        stateful: graph.nodes[tail].profile.per_flow_state,
                    };
                }
                merge_specs.push(MergeSpec {
                    segment: i,
                    total_count: grp.expected_arrivals(),
                    ops: grp.merge_ops(),
                    members: grp
                        .members
                        .iter()
                        .map(|m| MemberSpec {
                            version: m.version,
                            priority: m.priority,
                            drop_capable: m.drop_capable,
                            // The whole branch fails closed if any NF on
                            // it does: a missing arrival means *some* NF
                            // on the path did not finish its job.
                            on_failure: if m.path.iter().any(|&n| {
                                graph.nodes[n].profile.failure_policy() == FailurePolicy::FailClosed
                            }) {
                                FailurePolicy::FailClosed
                            } else {
                                FailurePolicy::FailOpen
                            },
                            stateful: m
                                .path
                                .iter()
                                .any(|&n| graph.nodes[n].profile.per_flow_state),
                        })
                        .collect(),
                    next: entry(i + 1),
                });
            }
        }
    }

    GraphTables {
        mid,
        entry_actions: entry(0),
        nf_configs,
        merge_specs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::table2::Registry;
    use nfp_policy::Policy;

    fn tables_for(chain: &[&str]) -> (GraphTables, ServiceGraph) {
        let mut reg = Registry::paper_table2();
        for (alias, ty) in [("FW", "Firewall"), ("LB", "LoadBalancer")] {
            let mut p = reg.get(ty).unwrap().clone();
            p.nf_type = alias.to_string();
            reg.register(p);
        }
        // The evaluated IDS can drop (see compile.rs tests).
        let mut ids = reg.get("NIDS").unwrap().clone().drops();
        ids.nf_type = "IDS".to_string();
        reg.register(ids);
        let policy = Policy::from_chain(chain.iter().copied());
        let c = compile(&policy, &reg, &[], &CompileOptions::default()).unwrap();
        let t = generate(&c.graph, 7);
        (t, c.graph)
    }

    #[test]
    fn sequential_chain_tables_are_a_linked_list() {
        let (t, g) = tables_for(&["NAT", "LB"]); // unparallelizable
        assert!(t.merge_specs.is_empty());
        let nat = g.node_by_name("NAT").unwrap();
        let lb = g.node_by_name("LB").unwrap();
        assert_eq!(
            t.entry_actions,
            vec![FtAction::Distribute {
                version: 1,
                targets: vec![Target::Nf(nat)]
            }]
        );
        assert_eq!(
            t.nf_configs[nat].actions,
            vec![FtAction::Distribute {
                version: 1,
                targets: vec![Target::Nf(lb)]
            }]
        );
        assert_eq!(
            t.nf_configs[lb].actions,
            vec![FtAction::Output { version: 1 }]
        );
    }

    #[test]
    fn east_west_tables_copy_and_merge() {
        // IDS -> [Monitor | LB(v2)]: classifier sends to IDS; IDS fans out
        // with a header-only copy; both branches end at merger(1); merger
        // outputs.
        let (t, g) = tables_for(&["IDS", "Monitor", "LB"]);
        let ids = g.node_by_name("IDS").unwrap();
        let monitor = g.node_by_name("Monitor").unwrap();
        let lb = g.node_by_name("LB").unwrap();
        // IDS's runtime performs the fan-out for segment 1.
        let fanout = &t.nf_configs[ids].actions;
        assert!(matches!(
            fanout[0],
            FtAction::Copy {
                from: 1,
                to: 2,
                kind: CopyKind::HeaderOnly
            }
        ));
        assert!(fanout.contains(&FtAction::Distribute {
            version: 1,
            targets: vec![Target::Nf(monitor)]
        }));
        assert!(fanout.contains(&FtAction::Distribute {
            version: 2,
            targets: vec![Target::Nf(lb)]
        }));
        // Both branch tails feed the merger of segment 1.
        assert_eq!(
            t.nf_configs[monitor].actions,
            vec![FtAction::Distribute {
                version: 1,
                targets: vec![Target::Merger(1)]
            }]
        );
        assert_eq!(
            t.nf_configs[lb].actions,
            vec![FtAction::Distribute {
                version: 2,
                targets: vec![Target::Merger(1)]
            }]
        );
        // The merge spec expects both arrivals and then outputs.
        let spec = t.merge_spec_for(1).unwrap();
        assert_eq!(spec.total_count, 2);
        assert!(!spec.ops.is_empty());
        assert_eq!(spec.next, vec![FtAction::Output { version: 1 }]);
    }

    #[test]
    fn north_south_merger_forwards_to_lb() {
        // VPN -> [Monitor | FW] -> LB: the segment-1 merger forwards v1 to
        // the LB, which outputs.
        let (t, g) = tables_for(&["VPN", "Monitor", "FW", "LB"]);
        let lb = g.node_by_name("LB").unwrap();
        let spec = t.merge_spec_for(1).unwrap();
        assert_eq!(spec.total_count, 2);
        assert!(spec.ops.is_empty(), "no copies → no merge ops");
        assert_eq!(
            spec.next,
            vec![FtAction::Distribute {
                version: 1,
                targets: vec![Target::Nf(lb)]
            }]
        );
        assert_eq!(
            t.nf_configs[lb].actions,
            vec![FtAction::Output { version: 1 }]
        );
        // Drop metadata: FW is drop-capable with higher priority.
        let fw_spec = spec
            .members
            .iter()
            .find(|m| m.drop_capable)
            .expect("FW member");
        assert!(fw_spec.priority > 0);
    }

    #[test]
    fn failure_policies_flow_into_tables() {
        // VPN -> [Monitor | FW] -> LB: the VPN and FW fail closed, the
        // rest fail open; the FW's member spec fails closed too.
        let (t, g) = tables_for(&["VPN", "Monitor", "FW", "LB"]);
        let vpn = g.node_by_name("VPN").unwrap();
        let monitor = g.node_by_name("Monitor").unwrap();
        let fw = g.node_by_name("FW").unwrap();
        let lb = g.node_by_name("LB").unwrap();
        assert_eq!(t.nf_configs[vpn].on_failure, FailurePolicy::FailClosed);
        assert_eq!(t.nf_configs[fw].on_failure, FailurePolicy::FailClosed);
        assert_eq!(t.nf_configs[monitor].on_failure, FailurePolicy::FailOpen);
        assert_eq!(t.nf_configs[lb].on_failure, FailurePolicy::FailOpen);
        let spec = t.merge_spec_for(1).unwrap();
        let by_drop = |d: bool| spec.members.iter().find(|m| m.drop_capable == d).unwrap();
        assert_eq!(by_drop(true).on_failure, FailurePolicy::FailClosed);
        assert_eq!(by_drop(false).on_failure, FailurePolicy::FailOpen);
    }

    #[test]
    fn statefulness_flows_into_tables() {
        // VPN -> [Monitor | FW] -> LB: Monitor and LB keep per-flow
        // state; VPN and FW do not. The Monitor branch's member spec is
        // stateful, the FW branch's is not.
        let (t, g) = tables_for(&["VPN", "Monitor", "FW", "LB"]);
        let vpn = g.node_by_name("VPN").unwrap();
        let monitor = g.node_by_name("Monitor").unwrap();
        let fw = g.node_by_name("FW").unwrap();
        let lb = g.node_by_name("LB").unwrap();
        assert!(!t.nf_configs[vpn].stateful);
        assert!(t.nf_configs[monitor].stateful);
        assert!(!t.nf_configs[fw].stateful);
        assert!(t.nf_configs[lb].stateful);
        let spec = t.merge_spec_for(1).unwrap();
        let by_drop = |d: bool| spec.members.iter().find(|m| m.drop_capable == d).unwrap();
        assert!(!by_drop(true).stateful, "FW branch is stateless");
        assert!(by_drop(false).stateful, "Monitor branch carries state");
    }

    #[test]
    fn v1_sharers_distribute_in_one_action() {
        // Monitor | Firewall share v1 → a single Distribute with 2 targets,
        // so the runtime retains the reference count once per extra target.
        let (t, _g) = tables_for(&["Monitor", "Firewall"]);
        let dist = t
            .entry_actions
            .iter()
            .find_map(|a| match a {
                FtAction::Distribute {
                    version: 1,
                    targets,
                } => Some(targets.len()),
                _ => None,
            })
            .unwrap();
        assert_eq!(dist, 2);
        assert!(t
            .entry_actions
            .iter()
            .all(|a| !matches!(a, FtAction::Copy { .. })));
    }
}
