//! Run-to-completion chain execution (BESS/NetBricks model).
//!
//! "The RTC model abandons virtualization techniques and consolidates the
//! entire service chain inside one CPU core" (§7). One function call walks
//! the packet through every NF; a drop anywhere ends processing — which is
//! precisely the sequential semantics NFP's result-correctness principle
//! is defined against, so this executor is also the reference for the
//! §6.4 replay experiment.

use nfp_nf::{NetworkFunction, PacketView, Verdict};
use nfp_packet::Packet;

/// A consolidated sequential chain.
pub struct RunToCompletion {
    nfs: Vec<Box<dyn NetworkFunction>>,
    /// Packets processed to completion (delivered).
    pub delivered: u64,
    /// Packets dropped mid-chain.
    pub dropped: u64,
}

impl RunToCompletion {
    /// Build from NF instances in chain order.
    pub fn new(nfs: Vec<Box<dyn NetworkFunction>>) -> Self {
        Self {
            nfs,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Chain length.
    pub fn len(&self) -> usize {
        self.nfs.len()
    }

    /// True for an empty chain.
    pub fn is_empty(&self) -> bool {
        self.nfs.is_empty()
    }

    /// Access an NF by position (stats inspection).
    pub fn nf(&self, i: usize) -> &dyn NetworkFunction {
        self.nfs[i].as_ref()
    }

    /// Process one packet through the whole chain. Returns the processed
    /// packet, or `None` if some NF dropped it. Checksums are finalized on
    /// delivery, matching the NFP engines' output behaviour.
    pub fn process(&mut self, mut pkt: Packet) -> Option<Packet> {
        for nf in &mut self.nfs {
            let mut view = PacketView::Exclusive(&mut pkt);
            if nf.process(&mut view) == Verdict::Drop {
                self.dropped += 1;
                return None;
            }
        }
        pkt.finalize_checksums().ok();
        self.delivered += 1;
        Some(pkt)
    }

    /// Process a batch, returning delivered packets in order.
    pub fn process_batch(&mut self, pkts: Vec<Packet>) -> Vec<Packet> {
        pkts.into_iter().filter_map(|p| self.process(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_nf::firewall::Firewall;
    use nfp_nf::lb::LoadBalancer;
    use nfp_nf::monitor::Monitor;
    use nfp_packet::ipv4::Ipv4Addr;

    fn chain() -> RunToCompletion {
        RunToCompletion::new(vec![
            Box::new(Monitor::new("mon")),
            Box::new(Firewall::with_synthetic_acl("fw", 100)),
            Box::new(LoadBalancer::with_uniform_backends("lb", 4)),
        ])
    }

    fn pkt(dip: Ipv4Addr, dport: u16) -> Packet {
        nfp_traffic::gen::build_tcp_frame(Ipv4Addr::new(1, 2, 3, 4), dip, 999, dport, b"data")
    }

    #[test]
    fn chain_applies_all_nfs_in_order() {
        let mut rtc = chain();
        let out = rtc.process(pkt(Ipv4Addr::new(9, 9, 9, 9), 80)).unwrap();
        assert_eq!(out.dip().unwrap().0[0], 192, "LB ran");
        assert_eq!(rtc.delivered, 1);
    }

    #[test]
    fn drop_short_circuits() {
        let mut rtc = chain();
        let out = rtc.process(pkt(Ipv4Addr::new(172, 16, 5, 5), 7005));
        assert!(out.is_none());
        assert_eq!(rtc.dropped, 1);
        // The monitor (before the firewall) still saw the packet; the LB
        // (after) must not have.
        let mon = rtc.nf(0).profile();
        assert_eq!(mon.nf_type, "mon");
    }

    #[test]
    fn batch_filters_drops() {
        let mut rtc = chain();
        let pkts = vec![
            pkt(Ipv4Addr::new(9, 9, 9, 9), 80),
            pkt(Ipv4Addr::new(172, 16, 5, 5), 7005),
            pkt(Ipv4Addr::new(9, 9, 9, 9), 443),
        ];
        let out = rtc.process_batch(pkts);
        assert_eq!(out.len(), 2);
        assert_eq!(rtc.delivered, 2);
        assert_eq!(rtc.dropped, 1);
    }
}
