//! # nfp-baseline
//!
//! The comparison systems of the NFP evaluation:
//!
//! * [`rtc`] — a BESS/NetBricks-style **run-to-completion** executor: the
//!   whole chain consolidated into one call per packet on one core (paper
//!   §7, Table 4). Because it executes NFs strictly in order, it doubles
//!   as the *sequential reference semantics* for the §6.4 result-
//!   correctness replay.
//! * [`onvm`] — an OpenNetVM-style **pipelining** data plane: one thread
//!   per NF, with every inter-NF hop relayed by a centralized virtual
//!   switch thread — the design whose queuing hot spot NFP's distributed
//!   runtime removes (§5/§6.2.1).

#![warn(missing_docs)]

pub mod onvm;
pub mod rtc;

pub use onvm::OnvmPipeline;
pub use rtc::RunToCompletion;
