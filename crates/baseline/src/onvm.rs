//! An OpenNetVM-style pipelining data plane with a centralized switch.
//!
//! "In previous work, packet steering among NFs relies on a centralized
//! virtual switch, which according to our evaluation incurs a performance
//! overhead due to packet queuing" (§5). This baseline reproduces that
//! architecture: each NF runs on its own thread, but **every** inter-NF
//! hop is relayed through one switch thread — so a chain of `n` NFs costs
//! `n + 1` switch transits per packet, and the switch serializes all
//! traffic (the hot spot NFP's distributed runtime removes).

use crate::rtc::RunToCompletion;
use nfp_dataplane::ring;
use nfp_nf::{NetworkFunction, PacketView, Verdict};
use nfp_packet::meta::Metadata;
use nfp_packet::Packet;
use nfp_traffic::{LatencyRecorder, LatencySummary};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Messages between the switch and NFs: the packet plus the index of the
/// NF that just finished with it (`stage == 0` ⇒ fresh from the wire).
struct OnvmMsg {
    pkt: Box<Packet>,
    stage: usize,
}

/// Report from one pipeline run.
#[derive(Debug)]
pub struct OnvmReport {
    /// Packets injected.
    pub injected: u64,
    /// Packets that traversed the chain.
    pub delivered: u64,
    /// Packets dropped by some NF.
    pub dropped: u64,
    /// Wall-clock run duration.
    pub elapsed: Duration,
    /// Inject→collect latency summary.
    pub latency: Option<LatencySummary>,
    /// Delivered packets (when requested).
    pub packets: Vec<Packet>,
}

/// The OpenNetVM-style pipeline.
pub struct OnvmPipeline {
    nfs: Vec<Box<dyn NetworkFunction>>,
    ring_capacity: usize,
    keep_packets: bool,
}

impl OnvmPipeline {
    /// Build from NF instances in chain order.
    pub fn new(nfs: Vec<Box<dyn NetworkFunction>>) -> Self {
        Self {
            nfs,
            ring_capacity: 256,
            keep_packets: false,
        }
    }

    /// Keep delivered packets in the report.
    pub fn keep_packets(mut self, keep: bool) -> Self {
        self.keep_packets = keep;
        self
    }

    /// Run the pipeline over `packets` and report. Also usable as a
    /// *semantic* oracle: the output equals [`RunToCompletion`] over the
    /// same NFs (sequential chains have one semantics regardless of the
    /// execution substrate).
    pub fn run(&mut self, packets: Vec<Packet>) -> OnvmReport {
        let n = self.nfs.len();
        assert!(n > 0, "empty chain");
        let keep = self.keep_packets;
        let injected_total = packets.len() as u64;
        let stop = AtomicBool::new(false);
        let delivered = AtomicU64::new(0);
        let dropped = AtomicU64::new(0);

        // Rings: injector→switch, switch→NF_i, NF_i→switch, switch→collector.
        let (inj_tx, inj_rx) = ring::channel::<OnvmMsg>(self.ring_capacity);
        let mut to_nf_tx = Vec::new();
        let mut to_nf_rx = Vec::new();
        let mut from_nf_tx = Vec::new();
        let mut from_nf_rx = Vec::new();
        for _ in 0..n {
            let (tx, rx) = ring::channel::<OnvmMsg>(self.ring_capacity);
            to_nf_tx.push(tx);
            to_nf_rx.push(Some(rx));
            let (tx2, rx2) = ring::channel::<OnvmMsg>(self.ring_capacity);
            from_nf_tx.push(Some(tx2));
            from_nf_rx.push(rx2);
        }
        let (out_tx, out_rx) = ring::channel::<OnvmMsg>(self.ring_capacity);

        let nfs = std::mem::take(&mut self.nfs);
        let mut report_latency = LatencyRecorder::with_capacity(packets.len());
        let mut report_packets = Vec::new();
        let started = Instant::now();

        crossbeam::thread::scope(|scope| {
            let stop_ref = &stop;
            let dropped_ref = &dropped;
            let delivered_ref = &delivered;

            // The centralized switch: serializes ALL hops. Moves its ring
            // endpoints in: a ring half is single-owner (`!Sync`) since
            // the consumer/producer index caches landed.
            scope.spawn(move |_| {
                let push = |msg: OnvmMsg, tx: &ring::Producer<OnvmMsg>| {
                    ring::push_blocking(tx, msg);
                };
                loop {
                    let mut progress = false;
                    if let Some(msg) = inj_rx.pop() {
                        progress = true;
                        push(msg, &to_nf_tx[0]);
                    }
                    for (i, rx) in from_nf_rx.iter().enumerate().take(n) {
                        if let Some(mut msg) = rx.pop() {
                            progress = true;
                            msg.stage = i + 1;
                            if msg.stage == n {
                                push(msg, &out_tx);
                            } else {
                                let next = msg.stage;
                                push(msg, &to_nf_tx[next]);
                            }
                        }
                    }
                    if !progress {
                        if stop_ref.load(Ordering::Acquire)
                            && inj_rx.is_empty()
                            && from_nf_rx.iter().all(|r| r.is_empty())
                        {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });

            // NF threads.
            let mut nf_handles = Vec::new();
            for (i, mut nf) in nfs.into_iter().enumerate() {
                let rx = to_nf_rx[i].take().expect("rx taken once");
                let tx = from_nf_tx[i].take().expect("tx taken once");
                nf_handles.push(scope.spawn(move |_| {
                    loop {
                        match rx.pop() {
                            Some(mut msg) => {
                                let verdict = {
                                    let mut view = PacketView::Exclusive(&mut msg.pkt);
                                    nf.process(&mut view)
                                };
                                match verdict {
                                    Verdict::Pass => ring::push_blocking(&tx, msg),
                                    Verdict::Drop => {
                                        dropped_ref.fetch_add(1, Ordering::Release);
                                    }
                                }
                            }
                            None => {
                                if stop_ref.load(Ordering::Acquire) && rx.is_empty() {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    nf
                }));
            }

            // Collector.
            let collector = scope.spawn(move |_| {
                let mut outputs = Vec::new();
                loop {
                    match out_rx.pop() {
                        Some(msg) => {
                            let mut pkt = *msg.pkt;
                            pkt.finalize_checksums().ok();
                            outputs.push((pkt.meta().pid(), Instant::now(), keep.then_some(pkt)));
                            delivered_ref.fetch_add(1, Ordering::Release);
                        }
                        None => {
                            if stop_ref.load(Ordering::Acquire) && out_rx.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                outputs
            });

            // Closed-loop injection.
            let mut inject_times = Vec::with_capacity(packets.len());
            for (i, mut pkt) in packets.into_iter().enumerate() {
                while (inject_times.len() as u64).saturating_sub(
                    delivered.load(Ordering::Acquire) + dropped.load(Ordering::Acquire),
                ) >= 64
                {
                    std::thread::yield_now();
                }
                pkt.set_meta(Metadata::new(0, i as u64, 1));
                inject_times.push(Instant::now());
                let msg = OnvmMsg {
                    pkt: Box::new(pkt),
                    stage: 0,
                };
                ring::push_blocking(&inj_tx, msg);
            }
            while delivered.load(Ordering::Acquire) + dropped.load(Ordering::Acquire)
                < injected_total
            {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Release);

            let outputs = collector.join().expect("collector");
            for (pid, t_out, pkt) in outputs {
                if let Some(t_in) = inject_times.get(pid as usize) {
                    report_latency.record(t_out.duration_since(*t_in));
                }
                if let Some(p) = pkt {
                    report_packets.push(p);
                }
            }
            for h in nf_handles {
                self.nfs.push(h.join().expect("nf thread"));
            }
        })
        .expect("onvm scope");

        OnvmReport {
            injected: injected_total,
            delivered: delivered.load(Ordering::Acquire),
            dropped: dropped.load(Ordering::Acquire),
            elapsed: started.elapsed(),
            latency: report_latency.summary(),
            packets: report_packets,
        }
    }
}

/// Convenience: build the RTC equivalent of the same chain (for oracle
/// comparisons in tests).
pub fn rtc_of(nfs: Vec<Box<dyn NetworkFunction>>) -> RunToCompletion {
    RunToCompletion::new(nfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfp_nf::firewall::Firewall;
    use nfp_nf::lb::LoadBalancer;
    use nfp_nf::monitor::Monitor;
    use nfp_packet::ipv4::Ipv4Addr;
    use nfp_traffic::{SizeDistribution, TrafficGenerator, TrafficSpec};

    fn nfs() -> Vec<Box<dyn NetworkFunction>> {
        vec![
            Box::new(Monitor::new("mon")),
            Box::new(Firewall::with_synthetic_acl("fw", 100)),
            Box::new(LoadBalancer::with_uniform_backends("lb", 4)),
        ]
    }

    fn traffic(n: usize) -> Vec<Packet> {
        TrafficGenerator::new(TrafficSpec {
            flows: 8,
            sizes: SizeDistribution::Fixed(96),
            ..TrafficSpec::default()
        })
        .batch(n)
    }

    #[test]
    fn pipeline_matches_rtc_semantics() {
        let pkts = traffic(100);
        let mut rtc = RunToCompletion::new(nfs());
        let expected: Vec<Vec<u8>> = rtc
            .process_batch(pkts.clone())
            .iter()
            .map(|p| p.data().to_vec())
            .collect();
        let mut pipe = OnvmPipeline::new(nfs()).keep_packets(true);
        let report = pipe.run(pkts);
        assert_eq!(report.delivered as usize, expected.len());
        let mut got: Vec<Vec<u8>> = report.packets.iter().map(|p| p.data().to_vec()).collect();
        // Completion order may interleave; compare as ordered-by-pid.
        got.sort();
        let mut want = expected;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn drops_counted() {
        let mut pkts = traffic(40);
        for p in pkts.iter_mut().take(15) {
            p.set_dip(Ipv4Addr::new(172, 16, 9, 1)).unwrap();
            p.set_dport(7009).unwrap();
            p.finalize_checksums().unwrap();
        }
        let mut pipe = OnvmPipeline::new(nfs());
        let report = pipe.run(pkts);
        assert_eq!(report.dropped, 15);
        assert_eq!(report.delivered, 25);
        assert!(report.latency.unwrap().count == 25);
    }

    #[test]
    fn reusable_after_run() {
        let mut pipe = OnvmPipeline::new(nfs());
        let r1 = pipe.run(traffic(20));
        let r2 = pipe.run(traffic(20));
        assert_eq!(r1.delivered + r2.delivered, 40);
    }
}
