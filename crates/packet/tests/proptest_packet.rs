//! Property tests for the packet substrate: parse/emit roundtrips,
//! checksum soundness, structural-edit inverses, field-mask algebra and
//! metadata packing over arbitrary inputs.

use nfp_packet::checksum::checksum;
use nfp_packet::ipv4::{self, Ipv4Addr};
use nfp_packet::meta::{Metadata, MID_MAX, PID_MAX, VERSION_MAX};
use nfp_packet::tcp;
use nfp_packet::{FieldId, FieldMask, Packet};
use proptest::prelude::*;

fn frame_strategy() -> impl Strategy<Value = Vec<u8>> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..1200),
    )
        .prop_map(|(sip, dip, sport, dport, payload)| {
            nfp_packet::testutil::tcp_frame_bytes(
                Ipv4Addr::from_u32(sip),
                Ipv4Addr::from_u32(dip),
                sport,
                dport,
                &payload,
            )
        })
}

proptest! {
    #[test]
    fn any_emitted_frame_parses_with_valid_checksums(frame in frame_strategy()) {
        let mut p = Packet::from_bytes(&frame).unwrap();
        let l = p.parse().unwrap();
        prop_assert_eq!(l.l3, 14);
        prop_assert_eq!(l.payload, 54);
        let d = p.data();
        prop_assert!(ipv4::Ipv4View::new(&d[14..]).unwrap().verify_checksum());
        prop_assert!(tcp::verify_checksum(&d[34..], p.sip().unwrap(), p.dip().unwrap()));
    }

    #[test]
    fn checksum_detects_single_bit_flips(frame in frame_strategy(), bit in 0usize..100) {
        let mut p = Packet::from_bytes(&frame).unwrap();
        p.parse().unwrap();
        let idx = 14 + (bit % 20); // somewhere in the IPv4 header
        let mut mutated = frame.clone();
        mutated[idx] ^= 1 << (bit % 8);
        if mutated[14] >> 4 == 4 && (mutated[14] & 0x0f) >= 5 {
            let view = ipv4::Ipv4View::new(&mutated[14..34]);
            if let Ok(v) = view {
                prop_assert!(!v.verify_checksum(), "flip at {idx} undetected");
            }
        }
    }

    #[test]
    fn field_write_then_read_roundtrips(frame in frame_strategy(), v in any::<u32>(), port in any::<u16>()) {
        let mut p = Packet::from_bytes(&frame).unwrap();
        p.parse().unwrap();
        p.set_dip(Ipv4Addr::from_u32(v)).unwrap();
        p.set_sport(port).unwrap();
        prop_assert_eq!(p.dip().unwrap(), Ipv4Addr::from_u32(v));
        prop_assert_eq!(p.sport().unwrap(), port);
        // Untouched fields survive.
        prop_assert_eq!(p.dport().unwrap(), u16::from_be_bytes([frame[36], frame[37]]));
    }

    #[test]
    fn insert_then_remove_is_identity(frame in frame_strategy(), at_frac in 0.0f64..1.0, n in 1usize..64) {
        let mut p = Packet::from_bytes(&frame).unwrap();
        let at = ((frame.len() as f64) * at_frac) as usize;
        p.insert_bytes(at, n).unwrap();
        prop_assert_eq!(p.len(), frame.len() + n);
        p.remove_bytes(at..at + n).unwrap();
        prop_assert_eq!(p.data(), &frame[..]);
    }

    #[test]
    fn header_only_copy_is_valid_and_bounded(frame in frame_strategy(), ver in 2u8..=15) {
        let p = Packet::from_bytes(&frame).unwrap();
        let c = p.header_only_copy(ver).unwrap();
        prop_assert!(c.len() <= 54);
        prop_assert!(c.is_header_only());
        prop_assert_eq!(c.meta().version(), ver);
        // The copy reparses and its IP length is internally consistent.
        let l = c.parsed().unwrap();
        let ip = ipv4::Ipv4View::new(&c.data()[l.l3..]).unwrap();
        prop_assert_eq!(ip.total_len() as usize, c.len() - 14);
        prop_assert!(ip.verify_checksum());
    }

    #[test]
    fn metadata_roundtrips(mid in 0u32..=MID_MAX, pid in 0u64..=PID_MAX, ver in 0u8..=VERSION_MAX) {
        let m = Metadata::new(mid, pid, ver);
        prop_assert_eq!(m.mid(), mid);
        prop_assert_eq!(m.pid(), pid);
        prop_assert_eq!(m.version(), ver);
        prop_assert_eq!(Metadata::from_raw(m.to_raw()), m);
    }

    #[test]
    fn field_mask_algebra(bits_a in 0u16..1024, bits_b in 0u16..1024) {
        let fields: Vec<FieldId> = FieldId::ALL.into_iter().collect();
        let mask_of = |bits: u16| {
            FieldMask::from_fields(
                fields.iter().enumerate().filter(|(i, _)| bits & (1 << i) != 0).map(|(_, f)| *f),
            )
        };
        let a = mask_of(bits_a);
        let b = mask_of(bits_b);
        // Union/intersection laws.
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersection(b), b.intersection(a));
        prop_assert_eq!(a.union(a), a);
        prop_assert_eq!(a.intersection(FieldMask::ALL), a);
        prop_assert_eq!(a.is_disjoint(b), a.intersection(b).is_empty());
        // Length via iteration agrees with count.
        prop_assert_eq!(a.iter().count(), a.len());
    }

    #[test]
    fn incremental_checksum_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..600), split in 0usize..600) {
        let split = split.min(data.len());
        let mut c = nfp_packet::checksum::Checksum::new();
        c.add_bytes(&data[..split]);
        c.add_bytes(&data[split..]);
        prop_assert_eq!(c.finish(), checksum(&data));
    }
}
