//! UDP header parsing and emission.

use crate::checksum::pseudo_header;
use crate::ipv4::Ipv4Addr;
use crate::{PacketError, Result};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Byte offsets of UDP fields relative to the start of the UDP header.
pub mod offsets {
    /// Source port (16 bits).
    pub const SPORT: usize = 0;
    /// Destination port (16 bits).
    pub const DPORT: usize = 2;
    /// Datagram length (16 bits).
    pub const LEN: usize = 4;
    /// Checksum (16 bits).
    pub const CHECKSUM: usize = 6;
}

/// Immutable view over a UDP header.
#[derive(Debug, Clone, Copy)]
pub struct UdpView<'a> {
    bytes: &'a [u8],
}

impl<'a> UdpView<'a> {
    /// Parse a UDP header at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "UDP header",
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        Ok(Self { bytes })
    }

    /// Source port.
    pub fn sport(&self) -> u16 {
        u16::from_be_bytes([self.bytes[0], self.bytes[1]])
    }

    /// Destination port.
    pub fn dport(&self) -> u16 {
        u16::from_be_bytes([self.bytes[2], self.bytes[3]])
    }

    /// Datagram length from the header.
    pub fn len(&self) -> u16 {
        u16::from_be_bytes([self.bytes[4], self.bytes[5]])
    }

    /// True when the length field is the minimum (header only).
    pub fn is_empty(&self) -> bool {
        self.len() as usize <= HEADER_LEN
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.bytes[6], self.bytes[7]])
    }

    /// Payload after the UDP header, bounded by the length field.
    pub fn payload(&self) -> &'a [u8] {
        let end = (self.len() as usize).clamp(HEADER_LEN, self.bytes.len());
        &self.bytes[HEADER_LEN..end]
    }
}

/// Write a UDP header into `buf`; checksum left zero (optional in IPv4) —
/// use [`fill_checksum`] to set it.
pub fn emit(buf: &mut [u8], sport: u16, dport: u16, datagram_len: u16) -> Result<()> {
    if buf.len() < HEADER_LEN {
        return Err(PacketError::NoCapacity {
            requested: HEADER_LEN,
            capacity: buf.len(),
        });
    }
    buf[0..2].copy_from_slice(&sport.to_be_bytes());
    buf[2..4].copy_from_slice(&dport.to_be_bytes());
    buf[4..6].copy_from_slice(&datagram_len.to_be_bytes());
    buf[6..8].copy_from_slice(&[0, 0]);
    Ok(())
}

/// Compute and patch the UDP checksum over datagram `dgram` (header+payload).
pub fn fill_checksum(dgram: &mut [u8], src: Ipv4Addr, dst: Ipv4Addr) {
    debug_assert!(dgram.len() >= HEADER_LEN);
    dgram[offsets::CHECKSUM] = 0;
    dgram[offsets::CHECKSUM + 1] = 0;
    let mut c = pseudo_header(src.0, dst.0, crate::ipv4::PROTO_UDP, dgram.len() as u16);
    c.add_bytes(dgram);
    let mut sum = c.finish();
    if sum == 0 {
        sum = 0xffff; // RFC 768: transmitted zero means "no checksum"
    }
    dgram[offsets::CHECKSUM..offsets::CHECKSUM + 2].copy_from_slice(&sum.to_be_bytes());
}

/// Verify the UDP checksum (zero checksum is accepted as "not present").
pub fn verify_checksum(dgram: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> bool {
    let view = match UdpView::new(dgram) {
        Ok(v) => v,
        Err(_) => return false,
    };
    if view.checksum() == 0 {
        return true;
    }
    let mut c = pseudo_header(src.0, dst.0, crate::ipv4::PROTO_UDP, dgram.len() as u16);
    c.add_bytes(dgram);
    c.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_checksum() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut dgram = vec![0u8; 12];
        emit(&mut dgram, 53, 33000, 12).unwrap();
        dgram[8..].copy_from_slice(&[9, 9, 9, 9]);
        fill_checksum(&mut dgram, src, dst);
        assert!(verify_checksum(&dgram, src, dst));
        let v = UdpView::new(&dgram).unwrap();
        assert_eq!(v.sport(), 53);
        assert_eq!(v.dport(), 33000);
        assert_eq!(v.len(), 12);
        assert_eq!(v.payload(), &[9, 9, 9, 9]);
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut dgram = vec![0u8; 8];
        emit(&mut dgram, 1, 2, 8).unwrap();
        assert!(verify_checksum(
            &dgram,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2)
        ));
    }

    #[test]
    fn corrupt_fails() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut dgram = vec![0u8; 10];
        emit(&mut dgram, 5, 6, 10).unwrap();
        fill_checksum(&mut dgram, src, dst);
        dgram[9] ^= 0x40;
        assert!(!verify_checksum(&dgram, src, dst));
    }

    #[test]
    fn truncated_rejected() {
        assert!(UdpView::new(&[0u8; 7]).is_err());
    }
}
