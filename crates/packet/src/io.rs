//! Pluggable packet I/O: the ingress/egress contract every traffic
//! backend implements.
//!
//! The engines never know where their packets come from or go to — they
//! pull bursts from an [`Ingress`] and push delivered frames into an
//! [`Egress`]. Three backend families implement the pair (in `nfp-io`):
//!
//! * the in-process `nfp-traffic` generators (the historical default),
//! * a classic-pcap file reader/writer for reproducible trace replay,
//! * a raw AF_PACKET socket (feature-gated), degrading to a loopback
//!   socket-pair shim when `CAP_NET_RAW` is absent.
//!
//! The contract is deliberately burst-shaped: `next_burst(max)` returns
//! up to `max` packets, mirroring NIC RX-ring semantics, and `None`
//! signals end of stream (a file ran out; a generator hit its budget).
//! A backend with nothing available *right now* but more to come returns
//! an empty burst — only `None` terminates a run.
//!
//! Backends stamp [`Metadata::with_ingress_ns`](crate::meta::Metadata)
//! on every packet they hand out; the classifier carries the stamp
//! through admission and feeds inter-arrival gaps into the telemetry
//! `ingress` histogram, so replayed traces surface their timing shape.

use crate::Packet;

/// Errors a packet I/O backend can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// The byte stream is not a valid capture/frame encoding.
    Format {
        /// What failed to decode.
        what: &'static str,
        /// Offset or detail (0 when not applicable).
        detail: u64,
    },
    /// The operating system refused an I/O operation.
    Os {
        /// The operation that failed.
        op: &'static str,
        /// `errno`-style code or 0.
        code: i32,
    },
    /// The backend cannot run in this environment (e.g. AF_PACKET
    /// without `CAP_NET_RAW`); callers may fall back to a shim.
    Unsupported {
        /// Why the backend is unavailable.
        why: &'static str,
    },
    /// A frame exceeds what a [`Packet`] buffer can hold.
    FrameTooLarge {
        /// The oversized frame's length.
        len: usize,
    },
}

impl core::fmt::Display for IoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IoError::Format { what, detail } => write!(f, "malformed {what} (at {detail})"),
            IoError::Os { op, code } => write!(f, "{op} failed (errno {code})"),
            IoError::Unsupported { why } => write!(f, "backend unavailable: {why}"),
            IoError::FrameTooLarge { len } => write!(f, "frame of {len} bytes exceeds capacity"),
        }
    }
}

impl std::error::Error for IoError {}

/// A source of packets: the engine-facing side of a traffic backend.
pub trait Ingress {
    /// Pull up to `max` packets. `Ok(None)` means the stream is over;
    /// `Ok(Some(vec![]))` means nothing is available right now but the
    /// stream has not ended (live sources).
    fn next_burst(&mut self, max: usize) -> Result<Option<Vec<Packet>>, IoError>;

    /// Human-readable backend name for reports and logs.
    fn label(&self) -> &'static str {
        "ingress"
    }
}

/// A sink for delivered packets: where the engine's output goes.
pub trait Egress {
    /// Emit a burst of delivered packets.
    fn emit_burst(&mut self, pkts: &[Packet]) -> Result<(), IoError>;

    /// Flush buffered output (file backends); default no-op.
    fn flush(&mut self) -> Result<(), IoError> {
        Ok(())
    }

    /// Human-readable backend name for reports and logs.
    fn label(&self) -> &'static str {
        "egress"
    }
}

/// Counters every `run_io` entry point reports, independent of engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoRunStats {
    /// Packets pulled from the ingress.
    pub pulled: u64,
    /// Packets delivered to the egress.
    pub delivered: u64,
    /// Packets dropped inside the dataplane (policy, merge, failure).
    pub dropped: u64,
    /// Packets the classifier terminally rejected at admission.
    pub rejected: u64,
}

/// An ingress over an in-memory packet vector (tests, sharding fronts).
#[derive(Debug)]
pub struct VecIngress {
    pkts: std::collections::VecDeque<Packet>,
}

impl VecIngress {
    /// Wrap `pkts`; they are handed out in order.
    pub fn new(pkts: Vec<Packet>) -> Self {
        Self { pkts: pkts.into() }
    }

    /// Packets not yet pulled.
    pub fn remaining(&self) -> usize {
        self.pkts.len()
    }
}

impl Ingress for VecIngress {
    fn next_burst(&mut self, max: usize) -> Result<Option<Vec<Packet>>, IoError> {
        if self.pkts.is_empty() {
            return Ok(None);
        }
        let n = max.max(1).min(self.pkts.len());
        Ok(Some(self.pkts.drain(..n).collect()))
    }

    fn label(&self) -> &'static str {
        "vec"
    }
}

/// An egress that keeps every delivered packet (tests, differential
/// harnesses).
#[derive(Debug, Default)]
pub struct CollectEgress {
    /// Delivered packets, in emission order.
    pub pkts: Vec<Packet>,
}

impl CollectEgress {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Egress for CollectEgress {
    fn emit_burst(&mut self, pkts: &[Packet]) -> Result<(), IoError> {
        self.pkts.extend(pkts.iter().cloned());
        Ok(())
    }

    fn label(&self) -> &'static str {
        "collect"
    }
}

/// An egress that counts and discards (benchmarks).
#[derive(Debug, Default)]
pub struct NullEgress {
    /// Packets discarded.
    pub emitted: u64,
    /// Bytes discarded.
    pub bytes: u64,
}

impl NullEgress {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Egress for NullEgress {
    fn emit_burst(&mut self, pkts: &[Packet]) -> Result<(), IoError> {
        self.emitted += pkts.len() as u64;
        self.bytes += pkts.iter().map(|p| p.len() as u64).sum::<u64>();
        Ok(())
    }

    fn label(&self) -> &'static str {
        "null"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ip, tcp_packet};

    fn pkts(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                tcp_packet(
                    ip(10, 0, 0, 1),
                    ip(10, 0, 0, 2),
                    1000 + i as u16,
                    80,
                    &[i as u8; 16],
                )
            })
            .collect()
    }

    #[test]
    fn vec_ingress_bursts_in_order_then_ends() {
        let mut ing = VecIngress::new(pkts(5));
        assert_eq!(ing.remaining(), 5);
        let b1 = ing.next_burst(2).unwrap().unwrap();
        assert_eq!(b1.len(), 2);
        assert_eq!(b1[0].sport().unwrap(), 1000);
        let b2 = ing.next_burst(16).unwrap().unwrap();
        assert_eq!(b2.len(), 3);
        assert!(ing.next_burst(4).unwrap().is_none());
        assert!(ing.next_burst(4).unwrap().is_none());
    }

    #[test]
    fn collect_and_null_egress_account_bursts() {
        let batch = pkts(3);
        let mut c = CollectEgress::new();
        c.emit_burst(&batch).unwrap();
        c.flush().unwrap();
        assert_eq!(c.pkts.len(), 3);
        assert_eq!(c.pkts[1].data(), batch[1].data());
        let mut n = NullEgress::new();
        n.emit_burst(&batch).unwrap();
        assert_eq!(n.emitted, 3);
        assert_eq!(n.bytes, batch.iter().map(|p| p.len() as u64).sum::<u64>());
    }

    #[test]
    fn io_error_displays() {
        assert!(IoError::Format {
            what: "pcap header",
            detail: 4
        }
        .to_string()
        .contains("pcap header"));
        assert!(IoError::Unsupported {
            why: "no CAP_NET_RAW"
        }
        .to_string()
        .contains("CAP_NET_RAW"));
    }
}
