//! The shared packet pool.
//!
//! The NFP infrastructure keeps all packets "in a shared memory region
//! allocated in huge pages accessible to all NFs" and passes *references*
//! between NFs instead of copying (paper §5, NetVM-style zero-copy
//! delivery). [`PacketPool`] reproduces that substrate in user space:
//!
//! * a fixed number of pre-allocated packet slots ("we prepare memory blocks
//!   to store input or copied packets during the system initialization", so
//!   copies never allocate on the datapath);
//! * cheap [`PacketRef`] handles that rings carry between NF threads;
//! * per-slot reference counts so one packet can be *distributed* to several
//!   parallel NFs without copying, and freed exactly when the merger is done
//!   with every copy;
//! * header-only copy (paper OP#2) as a pool operation.
//!
//! # Aliasing contract (the one `unsafe` region in this workspace)
//!
//! Slots hold packets in `UnsafeCell` so several NF threads can access one
//! packet concurrently, which is exactly NFP's Dirty Memory Reusing (OP#1):
//! the orchestrator has *proven at graph-compile time* that concurrent NFs
//! touch disjoint field sets. The pool exposes three access levels:
//!
//! 1. [`PacketPool::with_mut`] — exclusive: asserts the reference count is
//!    1, hands out `&mut Packet`. Used on sequential graph segments and by
//!    the merger.
//! 2. [`PacketPool::with`] — shared read of the whole packet: sound only
//!    while no concurrent writer exists for this slot (the compiled graph
//!    guarantees it for read-only parallel stages).
//! 3. [`PacketPool::read_field`] / [`PacketPool::write_field`] — field-
//!    scoped raw-pointer access for parallel stages under Dirty Memory
//!    Reusing. Writes to *disjoint byte ranges* from different threads are
//!    not data races; the orchestrator's dependency tables (paper Table 3 +
//!    Algorithm 1) are what makes the ranges disjoint.
//!
//! The free list is a lock-free Treiber stack with an ABA tag, so alloc and
//! release never take a lock on the datapath.

use crate::field::FieldId;
use crate::packet::Packet;
use crate::{PacketError, Result};
use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Sentinel "null" index terminating the free list.
const NIL: u32 = u32::MAX;

/// A handle to a pooled packet slot. `Copy`, 4 bytes — this is what ring
/// buffers between NFs actually carry ("an NF simply writes packet
/// references into the receive ring buffer of the other NF").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef(u32);

impl PacketRef {
    /// The slot index (stable for the lifetime of the allocation).
    pub fn index(self) -> u32 {
        self.0
    }
}

// Cache-line aligned: neighbouring slots are retained/released from
// different stage threads, and an unaligned header would let slot i's
// refcount false-share with slot i±1's.
#[repr(align(64))]
struct Slot {
    /// 0 = free; otherwise the number of logical owners.
    refcount: AtomicU32,
    /// Free-list link (valid only while free).
    next: AtomicU32,
    pkt: UnsafeCell<Packet>,
}

// SAFETY: concurrent access to `pkt` is governed by the contract documented
// in the module docs: exclusive access is runtime-checked via `refcount`,
// and shared field-level access is restricted to disjoint byte ranges by
// the orchestrator's compiled graph.
unsafe impl Sync for Slot {}
unsafe impl Send for Slot {}

/// A pre-allocated, reference-counted pool of packet slots shared by every
/// NF in one NFP server.
pub struct PacketPool {
    slots: Box<[Slot]>,
    /// Treiber stack head: (index, aba-tag) packed into 64 bits.
    free_head: AtomicU64,
    /// High-water mark of concurrently live slots (diagnostics).
    in_use: AtomicU32,
}

fn pack(index: u32, tag: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(index)
}

fn unpack(v: u64) -> (u32, u32) {
    (v as u32, (v >> 32) as u32)
}

impl PacketPool {
    /// Create a pool with `capacity` packet slots, all pre-allocated.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0 && capacity < NIL as usize, "bad pool capacity");
        let slots: Box<[Slot]> = (0..capacity)
            .map(|i| Slot {
                refcount: AtomicU32::new(0),
                next: AtomicU32::new(if i + 1 < capacity { i as u32 + 1 } else { NIL }),
                pkt: UnsafeCell::new(Packet::new()),
            })
            .collect();
        Self {
            slots,
            free_head: AtomicU64::new(pack(0, 0)),
            in_use: AtomicU32::new(0),
        }
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently allocated slots.
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed) as usize
    }

    fn pop_free(&self) -> Option<u32> {
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            let (idx, tag) = unpack(head);
            if idx == NIL {
                return None;
            }
            let next = self.slots[idx as usize].next.load(Ordering::Relaxed);
            match self.free_head.compare_exchange_weak(
                head,
                pack(next, tag.wrapping_add(1)),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(idx),
                Err(h) => head = h,
            }
        }
    }

    fn push_free(&self, idx: u32) {
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            let (old_idx, tag) = unpack(head);
            self.slots[idx as usize]
                .next
                .store(old_idx, Ordering::Relaxed);
            match self.free_head.compare_exchange_weak(
                head,
                pack(idx, tag.wrapping_add(1)),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Move `pkt` into a fresh slot. On pool exhaustion the packet is handed
    /// back so the caller can apply backpressure instead of dropping.
    // Returning the whole Packet in Err is the point of the API — the
    // caller keeps ownership to retry later; boxing it would add an
    // allocation on the backpressure path.
    #[allow(clippy::result_large_err)]
    pub fn insert(&self, pkt: Packet) -> core::result::Result<PacketRef, Packet> {
        match self.pop_free() {
            Some(idx) => {
                let slot = &self.slots[idx as usize];
                debug_assert_eq!(slot.refcount.load(Ordering::Relaxed), 0);
                // SAFETY: the slot was on the free list, so no other thread
                // holds a reference to it; we have exclusive access.
                unsafe { *slot.pkt.get() = pkt };
                slot.refcount.store(1, Ordering::Release);
                self.in_use.fetch_add(1, Ordering::Relaxed);
                Ok(PacketRef(idx))
            }
            None => Err(pkt),
        }
    }

    /// Add one logical owner (used by `distribute` to several parallel NFs
    /// without copying).
    pub fn retain(&self, r: PacketRef) {
        let prev = self.slots[r.0 as usize]
            .refcount
            .fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "retain of a free slot");
    }

    /// Drop one logical owner; the slot returns to the free list when the
    /// count reaches zero.
    pub fn release(&self, r: PacketRef) {
        let slot = &self.slots[r.0 as usize];
        let prev = slot.refcount.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "release of a free slot");
        if prev == 1 {
            self.in_use.fetch_sub(1, Ordering::Relaxed);
            self.push_free(r.0);
        }
    }

    /// Current reference count (diagnostics/tests).
    pub fn refcount(&self, r: PacketRef) -> u32 {
        self.slots[r.0 as usize].refcount.load(Ordering::Acquire)
    }

    /// Exclusive access. Panics if the slot is shared — calling this on a
    /// shared slot is a graph-compiler bug, not a recoverable condition.
    pub fn with_mut<R>(&self, r: PacketRef, f: impl FnOnce(&mut Packet) -> R) -> R {
        let slot = &self.slots[r.0 as usize];
        let rc = slot.refcount.load(Ordering::Acquire);
        assert_eq!(rc, 1, "with_mut on a slot with refcount {rc}");
        // SAFETY: refcount is 1 and the caller is that single owner, so no
        // other thread can access this slot concurrently.
        f(unsafe { &mut *slot.pkt.get() })
    }

    /// Shared read access. Sound while the compiled graph guarantees no
    /// concurrent writer for this slot (read-only parallel stages, merger
    /// input collection).
    pub fn with<R>(&self, r: PacketRef, f: impl FnOnce(&Packet) -> R) -> R {
        let slot = &self.slots[r.0 as usize];
        debug_assert!(
            slot.refcount.load(Ordering::Acquire) > 0,
            "with on free slot"
        );
        // SAFETY: per the module contract, no `&mut Packet` exists while
        // shared readers run; field-level writers touch only byte ranges the
        // orchestrator proved disjoint from anything read here.
        f(unsafe { &*slot.pkt.get() })
    }

    /// Read a field's bytes into `buf` under the Dirty-Memory-Reusing
    /// contract; returns the number of bytes written.
    pub fn read_field(&self, r: PacketRef, field: FieldId, buf: &mut [u8]) -> Result<usize> {
        let slot = &self.slots[r.0 as usize];
        // SAFETY: see `with`; additionally we only read this field's bytes,
        // which the compiled graph guarantees no concurrent NF writes.
        let pkt = unsafe { &*slot.pkt.get() };
        let range = pkt.field_range(field)?;
        let n = range.len();
        if buf.len() < n {
            return Err(PacketError::NoCapacity {
                requested: n,
                capacity: buf.len(),
            });
        }
        buf[..n].copy_from_slice(&pkt.data()[range]);
        Ok(n)
    }

    /// Overwrite a field's bytes under the Dirty-Memory-Reusing contract.
    /// Concurrent writers to *other* fields of the same packet are allowed;
    /// the orchestrator never schedules two concurrent writers of the same
    /// field without a copy (paper Table 3, read-write/write-write rows).
    pub fn write_field(&self, r: PacketRef, field: FieldId, value: &[u8]) -> Result<()> {
        let slot = &self.slots[r.0 as usize];
        // SAFETY: we form a shared reference only to *parse* (pure read of
        // header structure, which no NF mutates during a parallel stage) and
        // then write through a raw pointer without creating `&mut Packet`.
        let pkt = unsafe { &*slot.pkt.get() };
        let range = pkt.field_range(field)?;
        if range.len() != value.len() {
            return Err(PacketError::Malformed {
                what: "field value width mismatch",
            });
        }
        let base = pkt.frame_ptr() as *mut u8;
        // SAFETY: `range` is in-bounds of the frame (checked by
        // `field_range`), and disjointness from concurrent accesses is
        // guaranteed by the compiled service graph.
        unsafe {
            core::ptr::copy_nonoverlapping(value.as_ptr(), base.add(range.start), value.len());
        }
        Ok(())
    }

    /// Move the packet out of its slot (requires exclusive ownership) and
    /// free the slot.
    pub fn take(&self, r: PacketRef) -> Packet {
        let slot = &self.slots[r.0 as usize];
        let rc = slot.refcount.load(Ordering::Acquire);
        assert_eq!(rc, 1, "take on a slot with refcount {rc}");
        // SAFETY: sole owner, as asserted.
        let pkt = unsafe { core::mem::take(&mut *slot.pkt.get()) };
        slot.refcount.store(0, Ordering::Release);
        self.in_use.fetch_sub(1, Ordering::Relaxed);
        self.push_free(r.0);
        pkt
    }

    /// Allocate a **header-only copy** (paper OP#2) of `r`, tagged with
    /// `version`. Fails with [`PacketError::PoolExhausted`] when no free
    /// slot is available — the caller decides between backpressure and
    /// dropping.
    pub fn header_only_copy(&self, r: PacketRef, version: u8) -> Result<PacketRef> {
        let copied = self.with(r, |p| p.header_only_copy(version))?;
        self.insert(copied).map_err(|_| PacketError::PoolExhausted)
    }

    /// Allocate a full copy of `r`, tagged with `version`. Fails with
    /// [`PacketError::PoolExhausted`] when no free slot is available.
    pub fn full_copy(&self, r: PacketRef, version: u8) -> Result<PacketRef> {
        let copied = self.with(r, |p| p.full_copy(version))?;
        self.insert(copied).map_err(|_| PacketError::PoolExhausted)
    }
}

impl core::fmt::Debug for PacketPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PacketPool")
            .field("capacity", &self.capacity())
            .field("in_use", &self.in_use())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn alloc_release_cycles_all_slots() {
        let pool = PacketPool::new(4);
        let refs: Vec<_> = (0..4)
            .map(|_| pool.insert(Packet::new()).unwrap())
            .collect();
        assert_eq!(pool.in_use(), 4);
        assert!(pool.insert(Packet::new()).is_err());
        for r in refs {
            pool.release(r);
        }
        assert_eq!(pool.in_use(), 0);
        // All four slots usable again.
        for _ in 0..4 {
            pool.insert(Packet::new()).unwrap();
        }
    }

    #[test]
    fn retain_keeps_slot_alive() {
        let pool = PacketPool::new(2);
        let r = pool.insert(Packet::new()).unwrap();
        pool.retain(r);
        assert_eq!(pool.refcount(r), 2);
        pool.release(r);
        assert_eq!(pool.in_use(), 1);
        pool.release(r);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "with_mut on a slot")]
    fn with_mut_on_shared_slot_panics() {
        let pool = PacketPool::new(2);
        let r = pool.insert(Packet::new()).unwrap();
        pool.retain(r);
        pool.with_mut(r, |_| ());
    }

    #[test]
    fn take_moves_packet_out() {
        let pool = PacketPool::new(1);
        let mut p = Packet::new();
        p.set_meta(crate::Metadata::new(7, 9, 1));
        let r = pool.insert(p).unwrap();
        let out = pool.take(r);
        assert_eq!(out.meta().pid(), 9);
        assert_eq!(pool.in_use(), 0);
        pool.insert(Packet::new()).unwrap();
    }

    fn tcp_packet() -> Packet {
        let frame = crate::packet::tests::tcp_frame(32);
        let mut p = Packet::from_bytes(&frame).unwrap();
        p.parse().unwrap();
        p
    }

    #[test]
    fn field_read_write_through_pool() {
        let pool = PacketPool::new(2);
        let r = pool.insert(tcp_packet()).unwrap();
        pool.write_field(r, FieldId::Dport, &443u16.to_be_bytes())
            .unwrap();
        let mut buf = [0u8; 2];
        assert_eq!(pool.read_field(r, FieldId::Dport, &mut buf).unwrap(), 2);
        assert_eq!(u16::from_be_bytes(buf), 443);
        pool.release(r);
    }

    #[test]
    fn header_only_copy_through_pool() {
        let pool = PacketPool::new(2);
        let r = pool.insert(tcp_packet()).unwrap();
        let c = pool.header_only_copy(r, 2).unwrap();
        pool.with(c, |p| {
            assert!(p.is_header_only());
            assert_eq!(p.meta().version(), 2);
        });
        pool.release(r);
        pool.release(c);
    }

    #[test]
    fn copy_on_exhausted_pool_reports_exhaustion() {
        let pool = PacketPool::new(1);
        let r = pool.insert(tcp_packet()).unwrap();
        assert_eq!(pool.full_copy(r, 2), Err(PacketError::PoolExhausted));
        pool.release(r);
    }

    #[test]
    fn concurrent_alloc_release_stress() {
        let pool = Arc::new(PacketPool::new(64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    if let Ok(r) = pool.insert(Packet::new()) {
                        pool.retain(r);
                        pool.release(r);
                        pool.release(r);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn concurrent_disjoint_field_writes() {
        // Two threads write different fields of the same packet — the
        // Dirty Memory Reusing scenario. Both writes must land.
        let pool = Arc::new(PacketPool::new(2));
        let r = pool.insert(tcp_packet()).unwrap();
        pool.retain(r);
        let p1 = Arc::clone(&pool);
        let p2 = Arc::clone(&pool);
        let t1 = std::thread::spawn(move || {
            for i in 0..1000u16 {
                p1.write_field(r, FieldId::Sport, &i.to_be_bytes()).unwrap();
            }
            p1.release(r);
        });
        let t2 = std::thread::spawn(move || {
            for i in 0..1000u16 {
                p2.write_field(r, FieldId::Dport, &(!i).to_be_bytes())
                    .unwrap();
            }
            p2.release(r);
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(pool.in_use(), 0);
    }
}
