//! The canonical flow identity: the immutable 5-tuple and its RSS hash.
//!
//! Three consumers must agree byte-for-byte on how a packet maps to a
//! flow — the sharded engine's RSS dispatcher, the classifier (which
//! stamps the admission-time key into the packet metadata sidecar), and
//! every stateful NF keying its per-flow table. Hosting the key and the
//! FNV-1a hash here, in the one crate all three depend on, makes drift
//! between them impossible by construction: `shard_of` in the dataplane
//! and `FlowTable` partition checks in `nfp-nf` both call
//! [`FlowKey::shard`].
//!
//! The hash is computed over the 5-tuple *at admission*. NFs downstream
//! of a header-rewriting NF (a NAT rewrites sip/sport before a load
//! balancer sees the packet) must key their state by the admission-time
//! key carried in [`Metadata::flow`](crate::meta::Metadata::flow), never
//! by re-parsing the (possibly rewritten) headers — otherwise a flow's
//! state would land on a different shard than the flow itself.

use crate::ipv4::Ipv4Addr;
use crate::packet::Packet;

/// Length of the serialized key: 4 + 4 + 2 + 2 + 1 bytes.
pub const FLOW_KEY_BYTES: usize = 13;

/// The immutable 5-tuple identifying one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source address.
    pub sip: Ipv4Addr,
    /// Destination address.
    pub dip: Ipv4Addr,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// L4 protocol.
    pub proto: u8,
}

impl FlowKey {
    /// Build a key from explicit tuple parts.
    pub fn new(sip: Ipv4Addr, dip: Ipv4Addr, sport: u16, dport: u16, proto: u8) -> Self {
        Self {
            sip,
            dip,
            sport,
            dport,
            proto,
        }
    }

    /// Extract the key from a parseable packet; `None` when the frame
    /// does not carry an Ethernet/IPv4/TCP|UDP 5-tuple (such packets all
    /// land on shard 0 and carry no flow sidecar).
    pub fn of(pkt: &Packet) -> Option<Self> {
        let (sip, dip, sport, dport, proto) = pkt.five_tuple().ok()?;
        Some(Self::new(sip, dip, sport, dport, proto))
    }

    /// FNV-1a over the tuple bytes — the RSS hash. Byte order matches
    /// the original dataplane `shard_of`: address octets as they sit on
    /// the wire, ports big-endian, protocol last.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in self.sip.0.into_iter().chain(self.dip.0) {
            eat(b);
        }
        for b in self
            .sport
            .to_be_bytes()
            .into_iter()
            .chain(self.dport.to_be_bytes())
        {
            eat(b);
        }
        eat(self.proto);
        h
    }

    /// The shard this flow belongs to in a `shards`-way fleet.
    pub fn shard(&self, shards: usize) -> usize {
        if shards <= 1 {
            0
        } else {
            (self.hash() % shards as u64) as usize
        }
    }

    /// Serialize for state snapshots (fixed-width, byte order as hashed).
    pub fn to_bytes(&self) -> [u8; FLOW_KEY_BYTES] {
        let mut out = [0u8; FLOW_KEY_BYTES];
        out[0..4].copy_from_slice(&self.sip.0);
        out[4..8].copy_from_slice(&self.dip.0);
        out[8..10].copy_from_slice(&self.sport.to_be_bytes());
        out[10..12].copy_from_slice(&self.dport.to_be_bytes());
        out[12] = self.proto;
        out
    }

    /// Rebuild from [`FlowKey::to_bytes`] output.
    pub fn from_bytes(b: &[u8; FLOW_KEY_BYTES]) -> Self {
        Self {
            sip: Ipv4Addr([b[0], b[1], b[2], b[3]]),
            dip: Ipv4Addr([b[4], b[5], b[6], b[7]]),
            sport: u16::from_be_bytes([b[8], b[9]]),
            dport: u16::from_be_bytes([b[10], b[11]]),
            proto: b[12],
        }
    }
}

impl core::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{}->{}:{}/{}",
            self.sip, self.sport, self.dip, self.dport, self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sport: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 9, 9, 9),
            sport,
            80,
            6,
        )
    }

    #[test]
    fn hash_is_stable_and_tuple_sensitive() {
        assert_eq!(key(1).hash(), key(1).hash());
        assert_ne!(key(1).hash(), key(2).hash());
        // Locked against an independent FNV-1a reference: the shard
        // function is a wire contract (state snapshots partition by it),
        // so a hash change is a migration-breaking event and must be
        // deliberate.
        let k = key(1234);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in k.to_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(k.hash(), h, "to_bytes order and hash order must agree");
    }

    #[test]
    fn shard_is_hash_mod_n_and_single_shard_is_zero() {
        let k = key(7);
        assert_eq!(k.shard(1), 0);
        for n in 2..=8usize {
            assert_eq!(k.shard(n), (k.hash() % n as u64) as usize);
        }
    }

    #[test]
    fn bytes_round_trip() {
        for sport in [0u16, 1, 80, 65535] {
            let k = key(sport);
            assert_eq!(FlowKey::from_bytes(&k.to_bytes()), k);
        }
    }

    #[test]
    fn extraction_matches_manual_tuple() {
        let pkt = crate::testutil::tcp_packet(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            1111,
            2222,
            b"payload",
        );
        let k = FlowKey::of(&pkt).unwrap();
        assert_eq!(k.sip, Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(k.dport, 2222);
        assert_eq!(k.proto, crate::ipv4::PROTO_TCP);
    }

    #[test]
    fn garbage_has_no_key() {
        let garbage = Packet::from_bytes(&[0u8; 40]).unwrap();
        assert_eq!(FlowKey::of(&garbage), None);
    }
}
