//! # nfp-packet
//!
//! Packet substrate for the NFP (Network Function Parallelism) framework.
//!
//! This crate provides everything the NFP data plane and orchestrator need to
//! talk about packets:
//!
//! * Protocol header views and builders for Ethernet II, IPv4, TCP, UDP and
//!   the IPsec Authentication Header ([`ether`], [`ipv4`], [`tcp`], [`udp`],
//!   [`ah`]), all written from scratch with no external protocol crates.
//! * The Internet checksum ([`checksum`]).
//! * A byte-owning [`packet::Packet`] with headroom for header
//!   addition/removal and lazily parsed layer offsets.
//! * The NFP packet metadata word ([`meta::Metadata`]): a 20-bit match ID
//!   (MID), 40-bit packet ID (PID) and 4-bit copy version, exactly as the
//!   paper's Figure 5 specifies.
//! * The packet *field* model ([`field`]): the header fields NF action
//!   profiles are expressed over (source/destination IP, ports, payload, …)
//!   and dense [`field::FieldMask`] sets used by the orchestrator's
//!   dependency analysis and the Dirty Memory Reusing optimization.
//! * The pluggable packet I/O contract ([`io`]): the burst-shaped
//!   [`io::Ingress`]/[`io::Egress`] trait pair every traffic backend
//!   (generator, pcap file, raw socket) implements, so engines never know
//!   where packets come from or go to.
//! * A pre-allocated shared [`pool::PacketPool`] standing in for the paper's
//!   huge-page shared memory region: slots are reference-counted, packets are
//!   passed between NFs as cheap [`pool::PacketRef`]s, and header-only
//!   copies (paper optimization OP#2) are a first-class pool operation.
//!
//! The pool is the only module containing `unsafe`; its aliasing contract is
//! documented there and exercised by the property tests in `tests/`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod ah;
pub mod checksum;
pub mod ether;
pub mod field;
pub mod flow;
pub mod io;
pub mod ipv4;
pub mod meta;
pub mod packet;
pub mod pool;
pub mod tcp;
#[cfg(any(test, feature = "test-util"))]
pub mod testutil;
pub mod udp;

pub use field::{FieldId, FieldMask};
pub use flow::FlowKey;
pub use io::{Egress, Ingress, IoError};
pub use meta::Metadata;
pub use packet::Packet;
pub use pool::{PacketPool, PacketRef};

/// Errors produced while parsing or manipulating packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer is too short to contain the requested header.
    Truncated {
        /// Header or field that could not be read.
        what: &'static str,
        /// Bytes that were needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// A header field holds a value we cannot process (e.g. IPv4 IHL < 5).
    Malformed {
        /// Description of the malformation.
        what: &'static str,
    },
    /// The operation would overflow the packet buffer capacity.
    NoCapacity {
        /// Bytes requested.
        requested: usize,
        /// Capacity remaining.
        capacity: usize,
    },
    /// The requested field does not exist in this packet (e.g. TCP ports on
    /// an ICMP packet).
    FieldUnavailable(field::FieldId),
    /// The shared packet pool has no free slot for the requested
    /// allocation; the caller decides whether to retry (backpressure) or
    /// drop.
    PoolExhausted,
}

impl core::fmt::Display for PacketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PacketError::Truncated {
                what,
                needed,
                available,
            } => write!(f, "truncated {what}: need {needed} bytes, have {available}"),
            PacketError::Malformed { what } => write!(f, "malformed packet: {what}"),
            PacketError::NoCapacity {
                requested,
                capacity,
            } => write!(
                f,
                "insufficient buffer capacity: requested {requested}, capacity {capacity}"
            ),
            PacketError::FieldUnavailable(id) => write!(f, "field {id:?} unavailable"),
            PacketError::PoolExhausted => write!(f, "packet pool exhausted"),
        }
    }
}

impl std::error::Error for PacketError {}

/// Result alias used throughout this crate.
pub type Result<T> = core::result::Result<T, PacketError>;
