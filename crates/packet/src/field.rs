//! The packet *field* model.
//!
//! NF action profiles (paper Table 2) are expressed over a small set of
//! named packet fields — source/destination IP, source/destination port,
//! payload — plus header-structure actions (add/remove) and drop. The
//! orchestrator's dependency analysis (paper Table 3 and Algorithm 1) and
//! the Dirty Memory Reusing optimization (OP#1) both reason about *which
//! fields* two NFs touch; this module gives those fields stable identities
//! and dense set representations.

/// A named packet field that NF actions can read or write.
///
/// The first five variants are exactly the columns of the paper's Table 2;
/// the remainder extend the model to L2 and common IPv4 scalars so richer
/// NFs (routers decrementing TTL, DSCP markers) can be profiled too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum FieldId {
    /// IPv4 source address.
    Sip = 0,
    /// IPv4 destination address.
    Dip = 1,
    /// L4 (TCP/UDP) source port.
    Sport = 2,
    /// L4 (TCP/UDP) destination port.
    Dport = 3,
    /// Application payload bytes.
    Payload = 4,
    /// Ethernet source MAC.
    Smac = 5,
    /// Ethernet destination MAC.
    Dmac = 6,
    /// IPv4 time-to-live.
    Ttl = 7,
    /// IPv4 DSCP/ECN byte.
    Tos = 8,
    /// L4 checksum (rewritten after any header rewrite).
    L4Checksum = 9,
}

impl FieldId {
    /// All fields, in discriminant order.
    pub const ALL: [FieldId; 10] = [
        FieldId::Sip,
        FieldId::Dip,
        FieldId::Sport,
        FieldId::Dport,
        FieldId::Payload,
        FieldId::Smac,
        FieldId::Dmac,
        FieldId::Ttl,
        FieldId::Tos,
        FieldId::L4Checksum,
    ];

    /// The five fields of the paper's Table 2.
    pub const TABLE2: [FieldId; 5] = [
        FieldId::Sip,
        FieldId::Dip,
        FieldId::Sport,
        FieldId::Dport,
        FieldId::Payload,
    ];

    /// Short lowercase name used by the policy DSL and bench output.
    pub fn name(self) -> &'static str {
        match self {
            FieldId::Sip => "sip",
            FieldId::Dip => "dip",
            FieldId::Sport => "sport",
            FieldId::Dport => "dport",
            FieldId::Payload => "payload",
            FieldId::Smac => "smac",
            FieldId::Dmac => "dmac",
            FieldId::Ttl => "ttl",
            FieldId::Tos => "tos",
            FieldId::L4Checksum => "l4csum",
        }
    }

    /// Parse a field name as produced by [`FieldId::name`].
    pub fn parse(s: &str) -> Option<FieldId> {
        FieldId::ALL.into_iter().find(|f| f.name() == s)
    }

    /// True if the field lives in packet headers (vs. the payload).
    pub fn is_header(self) -> bool {
        !matches!(self, FieldId::Payload)
    }

    /// The bit this field occupies in a [`FieldMask`].
    pub fn bit(self) -> u16 {
        1 << (self as u8)
    }
}

impl core::fmt::Display for FieldId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A dense set of [`FieldId`]s.
///
/// The orchestrator computes, for every NF in a compiled service graph, the
/// mask of fields it may write; the Dirty Memory Reusing check is a mask
/// intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FieldMask(u16);

impl FieldMask {
    /// The empty set.
    pub const EMPTY: FieldMask = FieldMask(0);
    /// Every field.
    pub const ALL: FieldMask = FieldMask((1 << FieldId::ALL.len() as u16) - 1);

    /// Set containing a single field.
    pub fn single(f: FieldId) -> Self {
        Self(f.bit())
    }

    /// Build from an iterator of fields.
    pub fn from_fields<I: IntoIterator<Item = FieldId>>(fields: I) -> Self {
        fields.into_iter().fold(Self::EMPTY, |m, f| m.with(f))
    }

    /// This set plus `f`.
    #[must_use]
    pub fn with(self, f: FieldId) -> Self {
        Self(self.0 | f.bit())
    }

    /// Insert `f` in place.
    pub fn insert(&mut self, f: FieldId) {
        self.0 |= f.bit();
    }

    /// Remove `f` in place.
    pub fn remove(&mut self, f: FieldId) {
        self.0 &= !f.bit();
    }

    /// True if `f` is in the set.
    pub fn contains(self, f: FieldId) -> bool {
        self.0 & f.bit() != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: Self) -> Self {
        Self(self.0 & other.0)
    }

    /// True when the two sets share no field — the Dirty Memory Reusing
    /// precondition for sharing one packet copy between two writers.
    pub fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// True when the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of fields in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate the fields in the set in discriminant order.
    pub fn iter(self) -> impl Iterator<Item = FieldId> {
        FieldId::ALL.into_iter().filter(move |f| self.contains(*f))
    }

    /// Raw bits (stable across the crate, used for hashing/serialization).
    pub fn bits(self) -> u16 {
        self.0
    }
}

impl FromIterator<FieldId> for FieldMask {
    fn from_iter<T: IntoIterator<Item = FieldId>>(iter: T) -> Self {
        Self::from_fields(iter)
    }
}

impl core::fmt::Display for FieldMask {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for field in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{field}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_parse_roundtrip() {
        for f in FieldId::ALL {
            assert_eq!(FieldId::parse(f.name()), Some(f));
        }
        assert_eq!(FieldId::parse("nope"), None);
    }

    #[test]
    fn mask_set_operations() {
        let a = FieldMask::from_fields([FieldId::Sip, FieldId::Dip]);
        let b = FieldMask::from_fields([FieldId::Dip, FieldId::Sport]);
        assert!(a.contains(FieldId::Sip));
        assert!(!a.contains(FieldId::Sport));
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), FieldMask::single(FieldId::Dip));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(FieldMask::single(FieldId::Payload)));
    }

    #[test]
    fn insert_remove() {
        let mut m = FieldMask::EMPTY;
        m.insert(FieldId::Ttl);
        assert!(m.contains(FieldId::Ttl));
        m.remove(FieldId::Ttl);
        assert!(m.is_empty());
    }

    #[test]
    fn iter_matches_contains() {
        let m = FieldMask::from_fields([FieldId::Payload, FieldId::Sip, FieldId::L4Checksum]);
        let collected: Vec<_> = m.iter().collect();
        assert_eq!(
            collected,
            vec![FieldId::Sip, FieldId::Payload, FieldId::L4Checksum]
        );
    }

    #[test]
    fn all_mask_covers_all_fields() {
        for f in FieldId::ALL {
            assert!(FieldMask::ALL.contains(f));
        }
        assert_eq!(FieldMask::ALL.len(), FieldId::ALL.len());
    }

    #[test]
    fn display_formats() {
        let m = FieldMask::from_fields([FieldId::Sip, FieldId::Dport]);
        assert_eq!(m.to_string(), "{sip,dport}");
        assert_eq!(FieldMask::EMPTY.to_string(), "{}");
    }
}
