//! The Internet checksum (RFC 1071) used by IPv4, TCP and UDP.

/// Incrementally computable Internet checksum state.
///
/// Fold bytes in with [`Checksum::add_bytes`]; obtain the ones-complement
/// result with [`Checksum::finish`].
///
/// ```
/// use nfp_packet::checksum::Checksum;
/// let mut c = Checksum::new();
/// c.add_bytes(&[0x45, 0x00, 0x00, 0x73]);
/// let _sum = c.finish();
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
    /// Pending odd byte (checksum operates on 16-bit words).
    odd: Option<u8>,
}

impl Checksum {
    /// Create a fresh checksum accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a byte slice into the checksum.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut data = data;
        if let Some(hi) = self.odd.take() {
            if let Some((&lo, rest)) = data.split_first() {
                self.sum += u32::from(u16::from_be_bytes([hi, lo]));
                data = rest;
            } else {
                self.odd = Some(hi);
                return;
            }
        }
        let mut chunks = data.chunks_exact(2);
        for w in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
        }
        if let [last] = chunks.remainder() {
            self.odd = Some(*last);
        }
    }

    /// Fold a big-endian 16-bit word into the checksum.
    pub fn add_u16(&mut self, word: u16) {
        // Only valid at even offsets; NFP headers always are.
        debug_assert!(self.odd.is_none(), "add_u16 at odd offset");
        self.sum += u32::from(word);
    }

    /// Finish the computation, returning the ones-complement checksum.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.odd.take() {
            self.sum += u32::from(u16::from_be_bytes([hi, 0]));
        }
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// One-shot Internet checksum over a byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Pseudo-header checksum contribution for TCP/UDP over IPv4.
pub fn pseudo_header(src: [u8; 4], dst: [u8; 4], protocol: u8, l4_len: u16) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src);
    c.add_bytes(&dst);
    c.add_u16(u16::from(protocol));
    c.add_u16(l4_len);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example adapted from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn zero_buffer_checksums_to_ffff() {
        assert_eq!(checksum(&[0u8; 20]), 0xffff);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // 0xab00 word after padding.
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn split_feeding_equals_one_shot() {
        let data: Vec<u8> = (0u16..100).map(|i| (i * 7 % 251) as u8).collect();
        let whole = checksum(&data);
        for split in 0..data.len() {
            let mut c = Checksum::new();
            c.add_bytes(&data[..split]);
            c.add_bytes(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn verifying_a_packet_with_its_checksum_yields_zero() {
        // A checksummed region including its own correct checksum sums to 0.
        let mut data = vec![0x45, 0x00, 0x01, 0x02, 0x00, 0x00, 0x11, 0x22];
        let sum = checksum(&data);
        data[4] = (sum >> 8) as u8;
        data[5] = (sum & 0xff) as u8;
        assert_eq!(checksum(&data), 0);
    }

    #[test]
    fn real_ipv4_header_checksum() {
        // Classic example header from Wikipedia's IPv4 article.
        let hdr = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(checksum(&hdr), 0xb861);
    }
}
