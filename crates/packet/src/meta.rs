//! NFP per-packet metadata, paper Figure 5.
//!
//! The classifier attaches a 64-bit metadata word to every packet copy:
//!
//! ```text
//! | MID (20 bits) | PID (40 bits) | version (4 bits) |
//! ```
//!
//! * **MID** identifies the service graph the packet follows ("twenty bits
//!   of MID could express 1M service graphs").
//! * **PID** identifies the packet within its flow so the merger can collect
//!   all copies of the same packet.
//! * **version** distinguishes copies of one packet (`v1` is the original).

/// Number of bits in the match ID.
pub const MID_BITS: u32 = 20;
/// Number of bits in the packet ID.
pub const PID_BITS: u32 = 40;
/// Number of bits in the copy version.
pub const VERSION_BITS: u32 = 4;

/// Maximum representable match ID (1M-1 service graphs).
pub const MID_MAX: u32 = (1 << MID_BITS) - 1;
/// Maximum representable packet ID.
pub const PID_MAX: u64 = (1 << PID_BITS) - 1;
/// Maximum representable version.
pub const VERSION_MAX: u8 = (1 << VERSION_BITS) - 1;

/// The packed 64-bit NFP metadata word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Metadata(u64);

impl Metadata {
    /// Pack a metadata word. Values are masked to their field widths in
    /// release builds and asserted in debug builds.
    pub fn new(mid: u32, pid: u64, version: u8) -> Self {
        debug_assert!(mid <= MID_MAX, "MID overflows 20 bits");
        debug_assert!(pid <= PID_MAX, "PID overflows 40 bits");
        debug_assert!(version <= VERSION_MAX, "version overflows 4 bits");
        let mid = u64::from(mid & MID_MAX);
        let pid = pid & PID_MAX;
        let version = u64::from(version & VERSION_MAX);
        Self((mid << (PID_BITS + VERSION_BITS)) | (pid << VERSION_BITS) | version)
    }

    /// The match ID: which service graph this packet follows.
    pub fn mid(self) -> u32 {
        ((self.0 >> (PID_BITS + VERSION_BITS)) & u64::from(MID_MAX)) as u32
    }

    /// The packet ID: immutable per-packet identity used by the merger and
    /// by the merger agent's load-balancing hash.
    pub fn pid(self) -> u64 {
        (self.0 >> VERSION_BITS) & PID_MAX
    }

    /// The copy version (v1 = original).
    pub fn version(self) -> u8 {
        (self.0 & u64::from(VERSION_MAX)) as u8
    }

    /// Same metadata with a different version — used when the runtime
    /// executes a `copy(v1, v2)` action.
    pub fn with_version(self, version: u8) -> Self {
        Self::new(self.mid(), self.pid(), version)
    }

    /// The raw 64-bit representation (what would sit in front of the packet
    /// buffer on the wire between NFP modules).
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Rebuild from the raw representation.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
}

/// Version tag of the original packet copy.
pub const VERSION_ORIGINAL: u8 = 1;

impl core::fmt::Display for Metadata {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "mid={} pid={} v{}",
            self.mid(),
            self.pid(),
            self.version()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_extremes() {
        for (mid, pid, ver) in [
            (0u32, 0u64, 0u8),
            (MID_MAX, PID_MAX, VERSION_MAX),
            (1, 1, 1),
            (0xabcde, 0x12_3456_789a, 0x9),
        ] {
            let m = Metadata::new(mid, pid, ver);
            assert_eq!(m.mid(), mid);
            assert_eq!(m.pid(), pid);
            assert_eq!(m.version(), ver);
            assert_eq!(Metadata::from_raw(m.to_raw()), m);
        }
    }

    #[test]
    fn with_version_preserves_identity() {
        let m = Metadata::new(77, 123_456_789, VERSION_ORIGINAL);
        let v2 = m.with_version(2);
        assert_eq!(v2.mid(), 77);
        assert_eq!(v2.pid(), 123_456_789);
        assert_eq!(v2.version(), 2);
    }

    #[test]
    fn fields_do_not_bleed() {
        // A PID of all ones must not disturb MID or version.
        let m = Metadata::new(0, PID_MAX, 0);
        assert_eq!(m.mid(), 0);
        assert_eq!(m.version(), 0);
        let m = Metadata::new(MID_MAX, 0, 0);
        assert_eq!(m.pid(), 0);
        assert_eq!(m.version(), 0);
    }

    #[test]
    fn display_is_informative() {
        let m = Metadata::new(3, 42, 1);
        assert_eq!(m.to_string(), "mid=3 pid=42 v1");
    }
}
