//! NFP per-packet metadata, paper Figure 5.
//!
//! The classifier attaches a 64-bit metadata word to every packet copy:
//!
//! ```text
//! | MID (20 bits) | PID (40 bits) | version (4 bits) |
//! ```
//!
//! * **MID** identifies the service graph the packet follows ("twenty bits
//!   of MID could express 1M service graphs").
//! * **PID** identifies the packet within its flow so the merger can collect
//!   all copies of the same packet.
//! * **version** distinguishes copies of one packet (`v1` is the original).
//!
//! Besides the wire word, [`Metadata`] carries two host-side sidecars:
//!
//! * **epoch** — the id of the [`Program`](../../nfp_orchestrator) snapshot
//!   whose tables classified the packet. During a live reconfiguration two
//!   program epochs coexist, and every stage resolves its table lookups
//!   against the epoch stamped here, so a packet is classified, forwarded
//!   and merged under exactly one program version.
//! * **traced** — set by the classifier on every Nth admitted packet when
//!   trace sampling is enabled; stages append a timeline hop for packets
//!   (and their copies and nils, which inherit the flag) carrying it.
//! * **flow** — the admission-time [`FlowKey`] of the packet, stamped by
//!   the classifier alongside the epoch. Stateful NFs key their per-flow
//!   tables off this sidecar (never by re-parsing headers), so a NAT
//!   rewriting the source tuple upstream cannot shift a downstream NF's
//!   state onto the wrong shard.
//! * **ingress_ns** — the capture/arrival timestamp stamped by the packet
//!   I/O backend that produced the frame (pcap record time, raw-socket
//!   receive time), in nanoseconds; 0 means "not stamped" (synthetic
//!   traffic). The classifier preserves it through admission and feeds
//!   inter-arrival gaps into the telemetry `ingress` histogram.
//!
//! No sidecar crosses the wire — the paper's 64-bit word stays exactly
//! as Figure 5 specifies — so [`Metadata::to_raw`]/[`Metadata::from_raw`]
//! cover only the packed word and a round trip resets epoch to 0, traced
//! to false and flow to `None`.

use crate::flow::FlowKey;

/// Number of bits in the match ID.
pub const MID_BITS: u32 = 20;
/// Number of bits in the packet ID.
pub const PID_BITS: u32 = 40;
/// Number of bits in the copy version.
pub const VERSION_BITS: u32 = 4;

/// Maximum representable match ID (1M-1 service graphs).
pub const MID_MAX: u32 = (1 << MID_BITS) - 1;
/// Maximum representable packet ID.
pub const PID_MAX: u64 = (1 << PID_BITS) - 1;
/// Maximum representable version.
pub const VERSION_MAX: u8 = (1 << VERSION_BITS) - 1;

/// The packed 64-bit NFP metadata word plus the host-side epoch, trace
/// and flow sidecars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Metadata {
    word: u64,
    epoch: u64,
    traced: bool,
    flow: Option<FlowKey>,
    ingress_ns: u64,
}

impl Metadata {
    /// Pack a metadata word (epoch 0). Values are masked to their field
    /// widths in release builds and asserted in debug builds.
    pub fn new(mid: u32, pid: u64, version: u8) -> Self {
        debug_assert!(mid <= MID_MAX, "MID overflows 20 bits");
        debug_assert!(pid <= PID_MAX, "PID overflows 40 bits");
        debug_assert!(version <= VERSION_MAX, "version overflows 4 bits");
        let mid = u64::from(mid & MID_MAX);
        let pid = pid & PID_MAX;
        let version = u64::from(version & VERSION_MAX);
        Self {
            word: (mid << (PID_BITS + VERSION_BITS)) | (pid << VERSION_BITS) | version,
            epoch: 0,
            traced: false,
            flow: None,
            ingress_ns: 0,
        }
    }

    /// The match ID: which service graph this packet follows.
    pub fn mid(self) -> u32 {
        ((self.word >> (PID_BITS + VERSION_BITS)) & u64::from(MID_MAX)) as u32
    }

    /// The packet ID: immutable per-packet identity used by the merger and
    /// by the merger agent's load-balancing hash.
    pub fn pid(self) -> u64 {
        (self.word >> VERSION_BITS) & PID_MAX
    }

    /// The copy version (v1 = original).
    pub fn version(self) -> u8 {
        (self.word & u64::from(VERSION_MAX)) as u8
    }

    /// The program epoch whose tables classified this packet (host-side
    /// sidecar; 0 until the classifier stamps it).
    pub fn epoch(self) -> u64 {
        self.epoch
    }

    /// Same metadata tagged with the given program epoch — used by the
    /// classifier when admitting a packet under the current program
    /// snapshot.
    pub fn with_epoch(self, epoch: u64) -> Self {
        Self { epoch, ..self }
    }

    /// Whether this packet was selected for path tracing by the classifier
    /// (host-side sidecar; copies and nils inherit it with the rest of the
    /// metadata, so a sampled packet's whole fan-out is traced).
    pub fn traced(self) -> bool {
        self.traced
    }

    /// Same metadata with the trace-sampling flag set to `traced` — used
    /// by the classifier on every Nth admission.
    pub fn with_traced(self, traced: bool) -> Self {
        Self { traced, ..self }
    }

    /// The admission-time flow key (host-side sidecar; `None` until the
    /// classifier stamps it, and always `None` for frames without a
    /// parseable 5-tuple).
    pub fn flow(self) -> Option<FlowKey> {
        self.flow
    }

    /// Same metadata carrying the admission-time flow key — stamped by
    /// the classifier so downstream stateful NFs key their per-flow
    /// state by the *original* tuple even after header rewrites.
    pub fn with_flow(self, flow: Option<FlowKey>) -> Self {
        Self { flow, ..self }
    }

    /// The backend arrival timestamp in nanoseconds (host-side sidecar;
    /// 0 until a packet I/O backend stamps it — synthetic traffic never
    /// is).
    pub fn ingress_ns(self) -> u64 {
        self.ingress_ns
    }

    /// Same metadata carrying the backend arrival timestamp — stamped by
    /// pcap/raw-socket ingress backends so replayed traces keep their
    /// capture timing through the dataplane.
    pub fn with_ingress_ns(self, ingress_ns: u64) -> Self {
        Self { ingress_ns, ..self }
    }

    /// Same metadata with a different version — used when the runtime
    /// executes a `copy(v1, v2)` action. The epoch and trace sidecars are
    /// preserved: copies of a packet always belong to the epoch that
    /// admitted the original, and a traced packet's copies stay traced.
    pub fn with_version(self, version: u8) -> Self {
        Self {
            word: Self::new(self.mid(), self.pid(), version).word,
            ..self
        }
    }

    /// The raw 64-bit representation (what would sit in front of the packet
    /// buffer on the wire between NFP modules). The epoch sidecar is not
    /// part of the wire word.
    pub fn to_raw(self) -> u64 {
        self.word
    }

    /// Rebuild from the raw representation (epoch resets to 0, traced to
    /// false and flow to `None`: the sidecars are host-side tags, never
    /// serialized).
    pub fn from_raw(raw: u64) -> Self {
        Self {
            word: raw,
            epoch: 0,
            traced: false,
            flow: None,
            ingress_ns: 0,
        }
    }
}

/// Version tag of the original packet copy.
pub const VERSION_ORIGINAL: u8 = 1;

impl core::fmt::Display for Metadata {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "mid={} pid={} v{}",
            self.mid(),
            self.pid(),
            self.version()
        )?;
        if self.epoch != 0 {
            write!(f, " e{}", self.epoch)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_extremes() {
        for (mid, pid, ver) in [
            (0u32, 0u64, 0u8),
            (MID_MAX, PID_MAX, VERSION_MAX),
            (1, 1, 1),
            (0xabcde, 0x12_3456_789a, 0x9),
        ] {
            let m = Metadata::new(mid, pid, ver);
            assert_eq!(m.mid(), mid);
            assert_eq!(m.pid(), pid);
            assert_eq!(m.version(), ver);
            assert_eq!(Metadata::from_raw(m.to_raw()), m);
        }
    }

    #[test]
    fn with_version_preserves_identity() {
        let m = Metadata::new(77, 123_456_789, VERSION_ORIGINAL);
        let v2 = m.with_version(2);
        assert_eq!(v2.mid(), 77);
        assert_eq!(v2.pid(), 123_456_789);
        assert_eq!(v2.version(), 2);
    }

    #[test]
    fn fields_do_not_bleed() {
        // A PID of all ones must not disturb MID or version.
        let m = Metadata::new(0, PID_MAX, 0);
        assert_eq!(m.mid(), 0);
        assert_eq!(m.version(), 0);
        let m = Metadata::new(MID_MAX, 0, 0);
        assert_eq!(m.pid(), 0);
        assert_eq!(m.version(), 0);
    }

    #[test]
    fn epoch_rides_along_and_survives_reversioning() {
        let m = Metadata::new(3, 9, VERSION_ORIGINAL).with_epoch(5);
        assert_eq!(m.epoch(), 5);
        // Copies inherit the admitting epoch.
        let copy = m.with_version(2);
        assert_eq!(copy.epoch(), 5);
        assert_eq!(copy.version(), 2);
        // The wire word is epoch-free: a raw round trip resets it.
        assert_eq!(Metadata::from_raw(m.to_raw()).epoch(), 0);
        assert_eq!(m.to_raw(), Metadata::new(3, 9, VERSION_ORIGINAL).to_raw());
    }

    #[test]
    fn traced_rides_along_and_survives_reversioning() {
        let m = Metadata::new(4, 11, VERSION_ORIGINAL)
            .with_epoch(3)
            .with_traced(true);
        assert!(m.traced());
        // Copies keep both sidecars.
        let copy = m.with_version(2);
        assert!(copy.traced());
        assert_eq!(copy.epoch(), 3);
        // The wire word is sidecar-free.
        assert!(!Metadata::from_raw(m.to_raw()).traced());
        assert_eq!(m.to_raw(), Metadata::new(4, 11, VERSION_ORIGINAL).to_raw());
        // The flag can be cleared without touching identity.
        let off = m.with_traced(false);
        assert!(!off.traced());
        assert_eq!(off.pid(), 11);
    }

    #[test]
    fn flow_rides_along_and_survives_reversioning() {
        use crate::flow::FlowKey;
        use crate::ipv4::Ipv4Addr;
        let k = FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1234,
            80,
            6,
        );
        let m = Metadata::new(5, 17, VERSION_ORIGINAL)
            .with_epoch(2)
            .with_flow(Some(k));
        assert_eq!(m.flow(), Some(k));
        // Copies inherit the admission key with the rest of the sidecars.
        let copy = m.with_version(2);
        assert_eq!(copy.flow(), Some(k));
        assert_eq!(copy.epoch(), 2);
        // The wire word is sidecar-free.
        assert_eq!(Metadata::from_raw(m.to_raw()).flow(), None);
        assert_eq!(m.to_raw(), Metadata::new(5, 17, VERSION_ORIGINAL).to_raw());
    }

    #[test]
    fn ingress_ns_rides_along_and_survives_reversioning() {
        let m = Metadata::new(6, 23, VERSION_ORIGINAL)
            .with_epoch(4)
            .with_ingress_ns(1_234_567_890);
        assert_eq!(m.ingress_ns(), 1_234_567_890);
        // Copies inherit the arrival stamp with the other sidecars.
        let copy = m.with_version(2);
        assert_eq!(copy.ingress_ns(), 1_234_567_890);
        assert_eq!(copy.epoch(), 4);
        // The wire word stays sidecar-free: a raw round trip resets it.
        assert_eq!(Metadata::from_raw(m.to_raw()).ingress_ns(), 0);
        assert_eq!(m.to_raw(), Metadata::new(6, 23, VERSION_ORIGINAL).to_raw());
        // Unstamped metadata reads as 0 ("no backend timestamp").
        assert_eq!(Metadata::new(1, 2, 1).ingress_ns(), 0);
    }

    #[test]
    fn display_is_informative() {
        let m = Metadata::new(3, 42, 1);
        assert_eq!(m.to_string(), "mid=3 pid=42 v1");
        assert_eq!(m.with_epoch(2).to_string(), "mid=3 pid=42 v1 e2");
    }
}
