//! Ethernet II framing.

use crate::{PacketError, Result};

/// Length of an Ethernet II header in bytes.
pub const HEADER_LEN: usize = 14;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;
/// EtherType for IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86dd;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// True if this is a group (multicast/broadcast) address.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl core::str::FromStr for MacAddr {
    type Err = PacketError;

    fn from_str(s: &str) -> Result<Self> {
        let mut bytes = [0u8; 6];
        let mut parts = s.split(':');
        for b in &mut bytes {
            let part = parts.next().ok_or(PacketError::Malformed {
                what: "MAC address needs 6 octets",
            })?;
            *b = u8::from_str_radix(part, 16).map_err(|_| PacketError::Malformed {
                what: "MAC octet is not hex",
            })?;
        }
        if parts.next().is_some() {
            return Err(PacketError::Malformed {
                what: "MAC address has more than 6 octets",
            });
        }
        Ok(MacAddr(bytes))
    }
}

/// Immutable view over an Ethernet II header.
#[derive(Debug, Clone, Copy)]
pub struct EtherView<'a> {
    bytes: &'a [u8],
}

impl<'a> EtherView<'a> {
    /// Parse an Ethernet header at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "Ethernet header",
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        Ok(Self { bytes })
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        MacAddr(self.bytes[0..6].try_into().unwrap())
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        MacAddr(self.bytes[6..12].try_into().unwrap())
    }

    /// EtherType of the encapsulated protocol.
    pub fn ethertype(&self) -> u16 {
        u16::from_be_bytes([self.bytes[12], self.bytes[13]])
    }

    /// The bytes after the Ethernet header.
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[HEADER_LEN..]
    }
}

/// Write an Ethernet II header into the first [`HEADER_LEN`] bytes of `buf`.
pub fn emit(buf: &mut [u8], dst: MacAddr, src: MacAddr, ethertype: u16) -> Result<()> {
    if buf.len() < HEADER_LEN {
        return Err(PacketError::NoCapacity {
            requested: HEADER_LEN,
            capacity: buf.len(),
        });
    }
    buf[0..6].copy_from_slice(&dst.0);
    buf[6..12].copy_from_slice(&src.0);
    buf[12..14].copy_from_slice(&ethertype.to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; 14];
        let src: MacAddr = "02:00:00:00:00:01".parse().unwrap();
        let dst: MacAddr = "02:00:00:00:00:02".parse().unwrap();
        emit(&mut buf, dst, src, ETHERTYPE_IPV4).unwrap();
        let v = EtherView::new(&buf).unwrap();
        assert_eq!(v.src(), src);
        assert_eq!(v.dst(), dst);
        assert_eq!(v.ethertype(), ETHERTYPE_IPV4);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            EtherView::new(&[0u8; 13]),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn mac_display_and_parse() {
        let m: MacAddr = "de:ad:be:ef:00:2a".parse().unwrap();
        assert_eq!(m.to_string(), "de:ad:be:ef:00:2a");
        assert!("de:ad:be".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:2a:ff".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:2a".parse::<MacAddr>().is_err());
    }

    #[test]
    fn multicast_and_broadcast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!MacAddr([0x02, 0, 0, 0, 0, 1]).is_multicast());
    }
}
