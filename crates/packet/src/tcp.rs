//! TCP header parsing and emission.

use crate::checksum::pseudo_header;
use crate::ipv4::Ipv4Addr;
use crate::{PacketError, Result};

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// Byte offsets of TCP fields relative to the start of the TCP header.
pub mod offsets {
    /// Source port (16 bits).
    pub const SPORT: usize = 0;
    /// Destination port (16 bits).
    pub const DPORT: usize = 2;
    /// Sequence number (32 bits).
    pub const SEQ: usize = 4;
    /// Acknowledgment number (32 bits).
    pub const ACK: usize = 8;
    /// Data offset / reserved / flags.
    pub const DATA_OFF: usize = 12;
    /// Flags byte.
    pub const FLAGS: usize = 13;
    /// Window size (16 bits).
    pub const WINDOW: usize = 14;
    /// Checksum (16 bits).
    pub const CHECKSUM: usize = 16;
}

/// TCP flag bits.
pub mod flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// PSH.
    pub const PSH: u8 = 0x08;
    /// ACK.
    pub const ACK: u8 = 0x10;
}

/// Immutable view over a TCP header.
#[derive(Debug, Clone, Copy)]
pub struct TcpView<'a> {
    bytes: &'a [u8],
}

impl<'a> TcpView<'a> {
    /// Parse a TCP header at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "TCP header",
                needed: MIN_HEADER_LEN,
                available: bytes.len(),
            });
        }
        let doff = (bytes[offsets::DATA_OFF] >> 4) as usize * 4;
        if doff < MIN_HEADER_LEN {
            return Err(PacketError::Malformed {
                what: "TCP data offset below 5",
            });
        }
        if bytes.len() < doff {
            return Err(PacketError::Truncated {
                what: "TCP options",
                needed: doff,
                available: bytes.len(),
            });
        }
        Ok(Self { bytes })
    }

    /// Source port.
    pub fn sport(&self) -> u16 {
        u16::from_be_bytes([self.bytes[0], self.bytes[1]])
    }

    /// Destination port.
    pub fn dport(&self) -> u16 {
        u16::from_be_bytes([self.bytes[2], self.bytes[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.bytes[4..8].try_into().unwrap())
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes(self.bytes[8..12].try_into().unwrap())
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        (self.bytes[offsets::DATA_OFF] >> 4) as usize * 4
    }

    /// Flags byte.
    pub fn flags(&self) -> u8 {
        self.bytes[offsets::FLAGS]
    }

    /// Window size.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.bytes[14], self.bytes[15]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.bytes[16], self.bytes[17]])
    }

    /// Payload after the TCP header.
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[self.header_len()..]
    }
}

/// Parameters for emitting a 20-byte TCP header.
#[derive(Debug, Clone, Copy)]
pub struct TcpEmit {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags byte.
    pub flags: u8,
    /// Window size.
    pub window: u16,
}

impl Default for TcpEmit {
    fn default() -> Self {
        Self {
            sport: 0,
            dport: 0,
            seq: 0,
            ack: 0,
            flags: flags::ACK,
            window: 0xffff,
        }
    }
}

/// Write a 20-byte TCP header into `buf`; the checksum is left zero — call
/// [`fill_checksum`] once the payload is in place.
pub fn emit(buf: &mut [u8], params: &TcpEmit) -> Result<()> {
    if buf.len() < MIN_HEADER_LEN {
        return Err(PacketError::NoCapacity {
            requested: MIN_HEADER_LEN,
            capacity: buf.len(),
        });
    }
    buf[0..2].copy_from_slice(&params.sport.to_be_bytes());
    buf[2..4].copy_from_slice(&params.dport.to_be_bytes());
    buf[4..8].copy_from_slice(&params.seq.to_be_bytes());
    buf[8..12].copy_from_slice(&params.ack.to_be_bytes());
    buf[12] = 5 << 4;
    buf[13] = params.flags;
    buf[14..16].copy_from_slice(&params.window.to_be_bytes());
    buf[16..20].copy_from_slice(&[0, 0, 0, 0]); // checksum + urgent ptr
    Ok(())
}

/// Compute and patch the TCP checksum (pseudo-header included) over the TCP
/// segment `seg` (header + payload).
pub fn fill_checksum(seg: &mut [u8], src: Ipv4Addr, dst: Ipv4Addr) {
    debug_assert!(seg.len() >= MIN_HEADER_LEN);
    seg[offsets::CHECKSUM] = 0;
    seg[offsets::CHECKSUM + 1] = 0;
    let mut c = pseudo_header(src.0, dst.0, crate::ipv4::PROTO_TCP, seg.len() as u16);
    c.add_bytes(seg);
    let sum = c.finish();
    seg[offsets::CHECKSUM..offsets::CHECKSUM + 2].copy_from_slice(&sum.to_be_bytes());
}

/// Verify the TCP checksum of segment `seg`.
pub fn verify_checksum(seg: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> bool {
    let mut c = pseudo_header(src.0, dst.0, crate::ipv4::PROTO_TCP, seg.len() as u16);
    c.add_bytes(seg);
    c.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_checksum() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut seg = vec![0u8; 28];
        emit(
            &mut seg,
            &TcpEmit {
                sport: 443,
                dport: 51234,
                seq: 0xdeadbeef,
                ack: 0x01020304,
                flags: flags::ACK | flags::PSH,
                window: 1024,
            },
        )
        .unwrap();
        seg[20..].copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        fill_checksum(&mut seg, src, dst);
        assert!(verify_checksum(&seg, src, dst));
        let v = TcpView::new(&seg).unwrap();
        assert_eq!(v.sport(), 443);
        assert_eq!(v.dport(), 51234);
        assert_eq!(v.seq(), 0xdeadbeef);
        assert_eq!(v.ack(), 0x01020304);
        assert_eq!(v.flags(), flags::ACK | flags::PSH);
        assert_eq!(v.window(), 1024);
        assert_eq!(v.payload(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let src = Ipv4Addr::new(1, 1, 1, 1);
        let dst = Ipv4Addr::new(2, 2, 2, 2);
        let mut seg = vec![0u8; 24];
        emit(&mut seg, &TcpEmit::default()).unwrap();
        fill_checksum(&mut seg, src, dst);
        seg[22] ^= 1;
        assert!(!verify_checksum(&seg, src, dst));
    }

    #[test]
    fn truncated_and_bad_offset_rejected() {
        assert!(TcpView::new(&[0u8; 19]).is_err());
        let mut seg = [0u8; 20];
        emit(&mut seg, &TcpEmit::default()).unwrap();
        seg[12] = 4 << 4;
        assert!(TcpView::new(&seg).is_err());
        seg[12] = 8 << 4; // options longer than buffer
        assert!(TcpView::new(&seg).is_err());
    }
}
