//! IPv4 header parsing and emission.

use crate::checksum::checksum;
use crate::{PacketError, Result};

/// Minimum (and, for NFP-generated traffic, typical) IPv4 header length.
pub const MIN_HEADER_LEN: usize = 20;

/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// IP protocol number for the IPsec Authentication Header.
pub const PROTO_AH: u8 = 51;
/// IP protocol number for ICMP.
pub const PROTO_ICMP: u8 = 1;

/// An IPv4 address (we deliberately avoid `std::net::Ipv4Addr` so the field
/// model can treat addresses as raw big-endian bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Construct from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Self([a, b, c, d])
    }

    /// The address as a host-order `u32`.
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Construct from a host-order `u32`.
    pub fn from_u32(v: u32) -> Self {
        Self(v.to_be_bytes())
    }
}

impl core::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl core::str::FromStr for Ipv4Addr {
    type Err = PacketError;

    fn from_str(s: &str) -> Result<Self> {
        let mut b = [0u8; 4];
        let mut parts = s.split('.');
        for o in &mut b {
            let p = parts.next().ok_or(PacketError::Malformed {
                what: "IPv4 address needs 4 octets",
            })?;
            *o = p.parse().map_err(|_| PacketError::Malformed {
                what: "IPv4 octet out of range",
            })?;
        }
        if parts.next().is_some() {
            return Err(PacketError::Malformed {
                what: "IPv4 address has more than 4 octets",
            });
        }
        Ok(Ipv4Addr(b))
    }
}

/// Byte offsets of IPv4 fields relative to the start of the IPv4 header.
pub mod offsets {
    /// Version/IHL byte.
    pub const VER_IHL: usize = 0;
    /// DSCP/ECN byte.
    pub const TOS: usize = 1;
    /// Total length (16 bits).
    pub const TOTAL_LEN: usize = 2;
    /// Identification (16 bits).
    pub const IDENT: usize = 4;
    /// Flags + fragment offset (16 bits).
    pub const FLAGS_FRAG: usize = 6;
    /// Time to live.
    pub const TTL: usize = 8;
    /// Protocol number.
    pub const PROTOCOL: usize = 9;
    /// Header checksum (16 bits).
    pub const CHECKSUM: usize = 10;
    /// Source address (32 bits).
    pub const SRC: usize = 12;
    /// Destination address (32 bits).
    pub const DST: usize = 16;
}

/// Immutable view over an IPv4 header.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4View<'a> {
    bytes: &'a [u8],
}

impl<'a> Ipv4View<'a> {
    /// Parse an IPv4 header at the start of `bytes`, validating version, IHL
    /// and length consistency.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < MIN_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "IPv4 header",
                needed: MIN_HEADER_LEN,
                available: bytes.len(),
            });
        }
        let ver = bytes[0] >> 4;
        if ver != 4 {
            return Err(PacketError::Malformed {
                what: "IPv4 version is not 4",
            });
        }
        let ihl = (bytes[0] & 0x0f) as usize * 4;
        if ihl < MIN_HEADER_LEN {
            return Err(PacketError::Malformed {
                what: "IPv4 IHL below 5",
            });
        }
        if bytes.len() < ihl {
            return Err(PacketError::Truncated {
                what: "IPv4 options",
                needed: ihl,
                available: bytes.len(),
            });
        }
        Ok(Self { bytes })
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        (self.bytes[0] & 0x0f) as usize * 4
    }

    /// Total datagram length from the header.
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([
            self.bytes[offsets::TOTAL_LEN],
            self.bytes[offsets::TOTAL_LEN + 1],
        ])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.bytes[offsets::TTL]
    }

    /// Encapsulated protocol number.
    pub fn protocol(&self) -> u8 {
        self.bytes[offsets::PROTOCOL]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([
            self.bytes[offsets::CHECKSUM],
            self.bytes[offsets::CHECKSUM + 1],
        ])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        Ipv4Addr(
            self.bytes[offsets::SRC..offsets::SRC + 4]
                .try_into()
                .unwrap(),
        )
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        Ipv4Addr(
            self.bytes[offsets::DST..offsets::DST + 4]
                .try_into()
                .unwrap(),
        )
    }

    /// True if the checksum over the header (including the checksum field)
    /// verifies.
    pub fn verify_checksum(&self) -> bool {
        checksum(&self.bytes[..self.header_len()]) == 0
    }

    /// Bytes after the IPv4 header, bounded by `total_len` when consistent.
    pub fn payload(&self) -> &'a [u8] {
        let hl = self.header_len();
        let total = self.total_len() as usize;
        let end = total.clamp(hl, self.bytes.len());
        &self.bytes[hl..end]
    }
}

/// Parameters for emitting an IPv4 header (no options).
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Emit {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Encapsulated protocol number.
    pub protocol: u8,
    /// Total datagram length (header + payload).
    pub total_len: u16,
    /// Time to live.
    pub ttl: u8,
    /// Identification field.
    pub ident: u16,
}

impl Default for Ipv4Emit {
    fn default() -> Self {
        Self {
            src: Ipv4Addr::new(0, 0, 0, 0),
            dst: Ipv4Addr::new(0, 0, 0, 0),
            protocol: PROTO_TCP,
            total_len: MIN_HEADER_LEN as u16,
            ttl: 64,
            ident: 0,
        }
    }
}

/// Write a 20-byte IPv4 header (checksum filled in) into `buf`.
pub fn emit(buf: &mut [u8], params: &Ipv4Emit) -> Result<()> {
    if buf.len() < MIN_HEADER_LEN {
        return Err(PacketError::NoCapacity {
            requested: MIN_HEADER_LEN,
            capacity: buf.len(),
        });
    }
    buf[0] = 0x45; // version 4, IHL 5
    buf[1] = 0;
    buf[2..4].copy_from_slice(&params.total_len.to_be_bytes());
    buf[4..6].copy_from_slice(&params.ident.to_be_bytes());
    buf[6..8].copy_from_slice(&0x4000u16.to_be_bytes()); // DF set, not fragmented
    buf[8] = params.ttl;
    buf[9] = params.protocol;
    buf[10..12].copy_from_slice(&[0, 0]);
    buf[12..16].copy_from_slice(&params.src.0);
    buf[16..20].copy_from_slice(&params.dst.0);
    let sum = checksum(&buf[..MIN_HEADER_LEN]);
    buf[10..12].copy_from_slice(&sum.to_be_bytes());
    Ok(())
}

/// Recompute and patch the header checksum in place (after field rewrites).
pub fn refresh_checksum(hdr: &mut [u8]) {
    debug_assert!(hdr.len() >= MIN_HEADER_LEN);
    let hl = ((hdr[0] & 0x0f) as usize * 4).min(hdr.len());
    hdr[offsets::CHECKSUM] = 0;
    hdr[offsets::CHECKSUM + 1] = 0;
    let sum = checksum(&hdr[..hl]);
    hdr[offsets::CHECKSUM..offsets::CHECKSUM + 2].copy_from_slice(&sum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> [u8; 20] {
        let mut buf = [0u8; 20];
        emit(
            &mut buf,
            &Ipv4Emit {
                src: "10.0.0.1".parse().unwrap(),
                dst: "192.168.0.199".parse().unwrap(),
                protocol: PROTO_UDP,
                total_len: 0x73,
                ttl: 64,
                ident: 0,
            },
        )
        .unwrap();
        buf
    }

    #[test]
    fn emit_then_parse_roundtrips() {
        let buf = sample();
        let v = Ipv4View::new(&buf).unwrap();
        assert_eq!(v.src().to_string(), "10.0.0.1");
        assert_eq!(v.dst().to_string(), "192.168.0.199");
        assert_eq!(v.protocol(), PROTO_UDP);
        assert_eq!(v.total_len(), 0x73);
        assert_eq!(v.ttl(), 64);
        assert!(v.verify_checksum());
    }

    #[test]
    fn corrupting_any_byte_breaks_checksum() {
        let buf = sample();
        for i in 0..20 {
            let mut b = buf;
            b[i] ^= 0xff;
            if i == 0 {
                // Flipping version/IHL makes it unparseable instead.
                assert!(Ipv4View::new(&b).is_err());
            } else {
                let v = Ipv4View::new(&b).unwrap();
                assert!(!v.verify_checksum(), "byte {i}");
            }
        }
    }

    #[test]
    fn refresh_after_rewrite_verifies() {
        let mut buf = sample();
        buf[offsets::DST..offsets::DST + 4].copy_from_slice(&[1, 2, 3, 4]);
        refresh_checksum(&mut buf);
        assert!(Ipv4View::new(&buf).unwrap().verify_checksum());
    }

    #[test]
    fn rejects_wrong_version_and_short_ihl() {
        let mut buf = sample();
        buf[0] = 0x65;
        assert!(Ipv4View::new(&buf).is_err());
        buf[0] = 0x44;
        assert!(Ipv4View::new(&buf).is_err());
    }

    #[test]
    fn addr_parse_and_display() {
        let a: Ipv4Addr = "255.0.10.1".parse().unwrap();
        assert_eq!(a.to_string(), "255.0.10.1");
        assert!("1.2.3".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.256".parse::<Ipv4Addr>().is_err());
        assert_eq!(Ipv4Addr::from_u32(a.to_u32()), a);
    }

    #[test]
    fn payload_respects_total_len() {
        let mut buf = vec![0u8; 40];
        emit(
            &mut buf,
            &Ipv4Emit {
                total_len: 28,
                ..Ipv4Emit::default()
            },
        )
        .unwrap();
        let v = Ipv4View::new(&buf).unwrap();
        assert_eq!(v.payload().len(), 8);
    }
}
