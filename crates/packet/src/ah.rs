//! IPsec Authentication Header (RFC 4302), used by the VPN NF.
//!
//! The NFP paper's VPN NF implements "the tunnel mode of IPsec
//! Authentication Header (AH) protocol" and its merger supports operations
//! like `add(v2.AH, after, v1.IP)`. We implement the AH wire format here so
//! header addition/removal in the merger manipulates a real protocol header.

use crate::{PacketError, Result};

/// Fixed AH length we emit: 12 bytes of fields + 12 bytes of ICV
/// (HMAC-96-style truncated integrity value), a common AH size.
pub const HEADER_LEN: usize = 24;

/// Length of the truncated integrity check value we carry.
pub const ICV_LEN: usize = 12;

/// Immutable view over an Authentication Header.
#[derive(Debug, Clone, Copy)]
pub struct AhView<'a> {
    bytes: &'a [u8],
}

impl<'a> AhView<'a> {
    /// Parse an AH at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "Authentication Header",
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        // payload_len is in 32-bit words minus 2 (RFC 4302 §2.2).
        let words = bytes[1] as usize;
        if (words + 2) * 4 != HEADER_LEN {
            return Err(PacketError::Malformed {
                what: "AH payload length",
            });
        }
        Ok(Self { bytes })
    }

    /// Protocol number of the next header.
    pub fn next_header(&self) -> u8 {
        self.bytes[0]
    }

    /// Security Parameters Index.
    pub fn spi(&self) -> u32 {
        u32::from_be_bytes(self.bytes[4..8].try_into().unwrap())
    }

    /// Anti-replay sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.bytes[8..12].try_into().unwrap())
    }

    /// Integrity check value bytes.
    pub fn icv(&self) -> &'a [u8] {
        &self.bytes[12..HEADER_LEN]
    }

    /// Bytes after the AH.
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[HEADER_LEN..]
    }
}

/// Write an AH into the first [`HEADER_LEN`] bytes of `buf`.
pub fn emit(
    buf: &mut [u8],
    next_header: u8,
    spi: u32,
    seq: u32,
    icv: &[u8; ICV_LEN],
) -> Result<()> {
    if buf.len() < HEADER_LEN {
        return Err(PacketError::NoCapacity {
            requested: HEADER_LEN,
            capacity: buf.len(),
        });
    }
    buf[0] = next_header;
    buf[1] = (HEADER_LEN / 4 - 2) as u8;
    buf[2..4].copy_from_slice(&[0, 0]); // reserved
    buf[4..8].copy_from_slice(&spi.to_be_bytes());
    buf[8..12].copy_from_slice(&seq.to_be_bytes());
    buf[12..HEADER_LEN].copy_from_slice(icv);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; 32];
        let icv = [0xabu8; ICV_LEN];
        emit(&mut buf, crate::ipv4::PROTO_TCP, 0x1001, 7, &icv).unwrap();
        let v = AhView::new(&buf).unwrap();
        assert_eq!(v.next_header(), crate::ipv4::PROTO_TCP);
        assert_eq!(v.spi(), 0x1001);
        assert_eq!(v.seq(), 7);
        assert_eq!(v.icv(), &icv);
        assert_eq!(v.payload().len(), 32 - HEADER_LEN);
    }

    #[test]
    fn bad_length_rejected() {
        let mut buf = [0u8; 24];
        emit(&mut buf, 6, 1, 1, &[0u8; ICV_LEN]).unwrap();
        buf[1] = 9;
        assert!(AhView::new(&buf).is_err());
        assert!(AhView::new(&buf[..20]).is_err());
    }
}
