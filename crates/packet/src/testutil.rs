//! Shared test-frame builders (feature `test-util`).
//!
//! Every crate in the workspace needs valid Ethernet/IPv4/TCP-or-UDP frames
//! for its tests; this module is the single hand-rolled emitter they all
//! delegate to, so a header-layout change is made in exactly one place.
//! It is compiled only for this crate's own tests or when a dependent
//! enables the `test-util` feature (test harnesses and the traffic
//! generator do; datapath crates never should).

use crate::ether::{self, MacAddr};
use crate::ipv4::{self, Ipv4Addr, Ipv4Emit};
use crate::tcp::{self, TcpEmit};
use crate::udp;
use crate::Packet;

/// Ethernet + IPv4 + TCP header bytes in the frames built here.
pub const TCP_HEADERS_LEN: usize = 14 + 20 + 20;
/// Ethernet + IPv4 + UDP header bytes in the frames built here.
pub const UDP_HEADERS_LEN: usize = 14 + 20 + 8;

/// A deterministic payload pattern of `len` bytes (the classic mod-251
/// ramp), for tests that only care about payload length.
pub fn patterned_payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

/// The per-packet payload every traffic source in the workspace emits: a
/// mod-251 ramp offset by the packet index, with the index written
/// big-endian into the first 8 bytes when it fits — the §6.4 "unique
/// packet ID in the payload" correctness device. The generator backend
/// and the golden-trace builder both delegate here, so the byte pattern
/// is defined in exactly one place.
pub fn indexed_payload(len: usize, index: u64) -> Vec<u8> {
    let mut payload = vec![0u8; len];
    for (i, b) in payload.iter_mut().enumerate() {
        *b = ((i as u64 * 31 + index) % 251) as u8;
    }
    tag_payload_index(&mut payload, index);
    payload
}

/// Stamp the packet index into the first 8 bytes of `payload` (no-op on
/// shorter payloads) — the shared tail of [`indexed_payload`], also used
/// by sources that fill the rest of the payload differently (zero-padded
/// elephant flows).
pub fn tag_payload_index(payload: &mut [u8], index: u64) {
    if payload.len() >= 8 {
        payload[..8].copy_from_slice(&index.to_be_bytes());
    }
}

/// Build a checksum-valid Ethernet/IPv4/TCP frame as raw bytes.
pub fn tcp_frame_bytes(
    sip: Ipv4Addr,
    dip: Ipv4Addr,
    sport: u16,
    dport: u16,
    payload: &[u8],
) -> Vec<u8> {
    let ip_total = 20 + 20 + payload.len();
    let mut f = vec![0u8; 14 + ip_total];
    ether::emit(
        &mut f,
        MacAddr([0x02, 0, 0, 0, 0, 0x02]),
        MacAddr([0x02, 0, 0, 0, 0, 0x01]),
        ether::ETHERTYPE_IPV4,
    )
    .expect("frame fits");
    ipv4::emit(
        &mut f[14..],
        &Ipv4Emit {
            src: sip,
            dst: dip,
            protocol: ipv4::PROTO_TCP,
            total_len: ip_total as u16,
            ttl: 64,
            ident: 0,
        },
    )
    .expect("ip fits");
    tcp::emit(
        &mut f[34..],
        &TcpEmit {
            sport,
            dport,
            ..TcpEmit::default()
        },
    )
    .expect("tcp fits");
    f[TCP_HEADERS_LEN..].copy_from_slice(payload);
    tcp::fill_checksum(&mut f[34..], sip, dip);
    f
}

/// Build a checksum-valid Ethernet/IPv4/UDP frame as raw bytes.
pub fn udp_frame_bytes(
    sip: Ipv4Addr,
    dip: Ipv4Addr,
    sport: u16,
    dport: u16,
    payload: &[u8],
) -> Vec<u8> {
    let ip_total = 20 + 8 + payload.len();
    let mut f = vec![0u8; 14 + ip_total];
    ether::emit(
        &mut f,
        MacAddr([0x02, 0, 0, 0, 0, 0x02]),
        MacAddr([0x02, 0, 0, 0, 0, 0x01]),
        ether::ETHERTYPE_IPV4,
    )
    .expect("frame fits");
    ipv4::emit(
        &mut f[14..],
        &Ipv4Emit {
            src: sip,
            dst: dip,
            protocol: ipv4::PROTO_UDP,
            total_len: ip_total as u16,
            ttl: 64,
            ident: 0,
        },
    )
    .expect("ip fits");
    udp::emit(&mut f[34..], sport, dport, (8 + payload.len()) as u16).expect("udp fits");
    f[UDP_HEADERS_LEN..].copy_from_slice(payload);
    udp::fill_checksum(&mut f[34..], sip, dip);
    f
}

/// Shorthand IPv4 address.
pub fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
    Ipv4Addr::new(a, b, c, d)
}

/// Build a parsed TCP [`Packet`] (valid checksums, layers resolved).
pub fn tcp_packet(sip: Ipv4Addr, dip: Ipv4Addr, sport: u16, dport: u16, payload: &[u8]) -> Packet {
    let mut p =
        Packet::from_bytes(&tcp_frame_bytes(sip, dip, sport, dport, payload)).expect("frame fits");
    p.parse().expect("self-built frame parses");
    p
}

/// Build a parsed UDP [`Packet`].
pub fn udp_packet(sip: Ipv4Addr, dip: Ipv4Addr, sport: u16, dport: u16, payload: &[u8]) -> Packet {
    let mut p =
        Packet::from_bytes(&udp_frame_bytes(sip, dip, sport, dport, payload)).expect("frame fits");
    p.parse().expect("self-built frame parses");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_frames_parse_with_expected_layout() {
        let p = tcp_packet(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1234,
            80,
            &patterned_payload(32),
        );
        assert_eq!(p.payload().unwrap().len(), 32);
        assert_eq!(p.dport().unwrap(), 80);
        let u = udp_packet(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            53,
            53,
            b"hello",
        );
        assert_eq!(u.payload().unwrap(), b"hello");
    }

    #[test]
    fn indexed_payload_is_ramp_plus_index_tag() {
        let p = indexed_payload(32, 7);
        assert_eq!(u64::from_be_bytes(p[..8].try_into().unwrap()), 7);
        for (i, b) in p.iter().enumerate().skip(8) {
            assert_eq!(*b, ((i as u64 * 31 + 7) % 251) as u8);
        }
        // Payloads too short for the tag keep the pure ramp.
        let short = indexed_payload(5, 9);
        assert_eq!(short.len(), 5);
        for (i, b) in short.iter().enumerate() {
            assert_eq!(*b, ((i as u64 * 31 + 9) % 251) as u8);
        }
        assert!(indexed_payload(0, 3).is_empty());
    }
}
