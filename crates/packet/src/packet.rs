//! The owned packet buffer used throughout NFP.
//!
//! A [`Packet`] is a fixed-capacity byte buffer with front headroom (so
//! headers can be added or removed without moving the payload far), the NFP
//! [`Metadata`] word, lazily parsed layer offsets, and field-level accessors
//! keyed by [`FieldId`] — the same field vocabulary the orchestrator's
//! dependency analysis uses.
//!
//! The assumed frame layout is `Ethernet → IPv4 → [AH]* → TCP|UDP → payload`,
//! which covers every NF in the paper's evaluation.

use crate::ah;
use crate::ether::{self, MacAddr};
use crate::field::FieldId;
use crate::ipv4::{self, Ipv4Addr};
use crate::meta::Metadata;
use crate::tcp;
use crate::udp;
use crate::{PacketError, Result};
use core::ops::Range;

/// Capacity of every packet buffer: an MTU-sized frame plus headroom and
/// room for added headers (AH etc.).
pub const CAPACITY: usize = 2048;

/// Bytes reserved in front of the frame for header prepending.
pub const HEADROOM: usize = 128;

/// Largest frame we accept (Ethernet MTU + L2 header, no jumbo frames).
pub const MAX_FRAME: usize = 1514;

/// Parsed layer offsets, relative to the start of the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layers {
    /// Offset of the IPv4 header (after Ethernet).
    pub l3: usize,
    /// Offset of the L4 (TCP/UDP) header.
    pub l4: usize,
    /// Offset of the application payload.
    pub payload: usize,
    /// L4 protocol number actually found (TCP/UDP), after skipping AH.
    pub l4_proto: u8,
    /// Offset of an Authentication Header between IP and L4, if present.
    pub ah: Option<usize>,
}

/// An owned packet: buffer + NFP metadata + parse state.
#[derive(Debug, Clone)]
pub struct Packet {
    buf: Box<[u8]>,
    start: usize,
    len: usize,
    meta: Metadata,
    layers: Option<Layers>,
    nil: bool,
    nil_priority: u32,
    nil_failure: bool,
    header_only: bool,
}

impl Default for Packet {
    fn default() -> Self {
        Self::new()
    }
}

impl Packet {
    /// Allocate an empty packet buffer.
    pub fn new() -> Self {
        Self {
            buf: vec![0u8; CAPACITY].into_boxed_slice(),
            start: HEADROOM,
            len: 0,
            meta: Metadata::default(),
            layers: None,
            nil: false,
            nil_priority: 0,
            nil_failure: false,
            header_only: false,
        }
    }

    /// Allocate a packet holding a copy of `frame`.
    pub fn from_bytes(frame: &[u8]) -> Result<Self> {
        let mut p = Self::new();
        p.set_frame(frame)?;
        Ok(p)
    }

    /// Replace the frame contents (keeps metadata, clears parse state).
    pub fn set_frame(&mut self, frame: &[u8]) -> Result<()> {
        if frame.len() > CAPACITY - HEADROOM {
            return Err(PacketError::NoCapacity {
                requested: frame.len(),
                capacity: CAPACITY - HEADROOM,
            });
        }
        self.start = HEADROOM;
        self.len = frame.len();
        self.buf[HEADROOM..HEADROOM + frame.len()].copy_from_slice(frame);
        self.layers = None;
        self.nil = false;
        self.nil_failure = false;
        self.header_only = false;
        Ok(())
    }

    /// The frame bytes.
    pub fn data(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }

    /// Mutable frame bytes (clears cached parse state on header-structure
    /// changes is the caller's responsibility via [`Packet::invalidate`]).
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.start..self.start + self.len]
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// NFP metadata word.
    pub fn meta(&self) -> Metadata {
        self.meta
    }

    /// Set the NFP metadata word.
    pub fn set_meta(&mut self, meta: Metadata) {
        self.meta = meta;
    }

    /// Mark this packet as a *nil packet*: the runtime sends one to the
    /// merger in place of a dropped packet so drops propagate (§5.2/§5.3).
    pub fn set_nil(&mut self, nil: bool) {
        self.nil = nil;
    }

    /// True if this is a nil (drop-intention) packet.
    pub fn is_nil(&self) -> bool {
        self.nil
    }

    /// Conflict priority of the parallel member that emitted this nil
    /// packet — the merger resolves drop disagreements with it (§5.3 plus
    /// the `Priority` rule semantics of §3).
    pub fn nil_priority(&self) -> u32 {
        self.nil_priority
    }

    /// Set the emitting member's conflict priority on a nil packet.
    pub fn set_nil_priority(&mut self, priority: u32) {
        self.nil_priority = priority;
    }

    /// Mark this nil packet as a *failure* nil: it stands in for a
    /// fail-closed NF that crashed, not for a deliberate drop verdict.
    /// Unlike verdict nils, failure nils drop the packet unconditionally
    /// at merge time — the drop-conflict priority rules do not apply,
    /// because no higher-priority NF can "overrule" a crash.
    pub fn set_nil_failure(&mut self, failure: bool) {
        self.nil_failure = failure;
    }

    /// True if this nil packet was emitted by the failed-NF path rather
    /// than by a drop verdict.
    pub fn is_nil_failure(&self) -> bool {
        self.nil_failure
    }

    /// True if this copy carries only headers (OP#2 Header-Only Copying).
    pub fn is_header_only(&self) -> bool {
        self.header_only
    }

    /// Forget cached layer offsets (call after structural edits).
    pub fn invalidate(&mut self) {
        self.layers = None;
    }

    /// Parse Ethernet → IPv4 → (optional AH) → TCP/UDP and cache the offsets.
    pub fn parse(&mut self) -> Result<Layers> {
        if let Some(l) = self.layers {
            return Ok(l);
        }
        let l = Self::parse_frame(self.data())?;
        self.layers = Some(l);
        Ok(l)
    }

    /// Parse without caching (for immutable contexts).
    pub fn parsed(&self) -> Result<Layers> {
        match self.layers {
            Some(l) => Ok(l),
            None => Self::parse_frame(self.data()),
        }
    }

    fn parse_frame(data: &[u8]) -> Result<Layers> {
        let eth = ether::EtherView::new(data)?;
        if eth.ethertype() != ether::ETHERTYPE_IPV4 {
            return Err(PacketError::Malformed {
                what: "not an IPv4 frame",
            });
        }
        let l3 = ether::HEADER_LEN;
        let ip = ipv4::Ipv4View::new(&data[l3..])?;
        let mut next = ip.protocol();
        let mut off = l3 + ip.header_len();
        let mut ah_off = None;
        if next == ipv4::PROTO_AH {
            let ahv = ah::AhView::new(&data[off..])?;
            ah_off = Some(off);
            next = ahv.next_header();
            off += ah::HEADER_LEN;
        }
        let (l4, payload) = match next {
            ipv4::PROTO_TCP => {
                let t = tcp::TcpView::new(&data[off..])?;
                (off, off + t.header_len())
            }
            ipv4::PROTO_UDP => {
                udp::UdpView::new(&data[off..])?;
                (off, off + udp::HEADER_LEN)
            }
            _ => {
                return Err(PacketError::Malformed {
                    what: "unsupported L4 protocol",
                })
            }
        };
        Ok(Layers {
            l3,
            l4,
            payload,
            l4_proto: next,
            ah: ah_off,
        })
    }

    /// Byte range (relative to the frame start) occupied by `field`.
    pub fn field_range(&self, field: FieldId) -> Result<Range<usize>> {
        let l = self.parsed()?;
        let r = match field {
            FieldId::Smac => 6..12,
            FieldId::Dmac => 0..6,
            FieldId::Sip => l.l3 + ipv4::offsets::SRC..l.l3 + ipv4::offsets::SRC + 4,
            FieldId::Dip => l.l3 + ipv4::offsets::DST..l.l3 + ipv4::offsets::DST + 4,
            FieldId::Ttl => l.l3 + ipv4::offsets::TTL..l.l3 + ipv4::offsets::TTL + 1,
            FieldId::Tos => l.l3 + ipv4::offsets::TOS..l.l3 + ipv4::offsets::TOS + 1,
            FieldId::Sport => l.l4..l.l4 + 2,
            FieldId::Dport => l.l4 + 2..l.l4 + 4,
            FieldId::L4Checksum => match l.l4_proto {
                ipv4::PROTO_TCP => l.l4 + tcp::offsets::CHECKSUM..l.l4 + tcp::offsets::CHECKSUM + 2,
                ipv4::PROTO_UDP => l.l4 + udp::offsets::CHECKSUM..l.l4 + udp::offsets::CHECKSUM + 2,
                _ => return Err(PacketError::FieldUnavailable(field)),
            },
            FieldId::Payload => l.payload..self.len,
        };
        if r.end > self.len {
            return Err(PacketError::Truncated {
                what: "field range",
                needed: r.end,
                available: self.len,
            });
        }
        Ok(r)
    }

    /// Read a header field as raw bytes.
    pub fn field_bytes(&self, field: FieldId) -> Result<&[u8]> {
        let r = self.field_range(field)?;
        Ok(&self.data()[r])
    }

    /// Overwrite a field with raw bytes (must match the field width; the
    /// payload may shrink or grow within the current frame length only).
    pub fn set_field_bytes(&mut self, field: FieldId, value: &[u8]) -> Result<()> {
        let r = self.field_range(field)?;
        if r.len() != value.len() {
            return Err(PacketError::Malformed {
                what: "field value width mismatch",
            });
        }
        let start = self.start;
        self.buf[start + r.start..start + r.end].copy_from_slice(value);
        Ok(())
    }

    // -- typed convenience accessors ------------------------------------

    /// Source IPv4 address.
    pub fn sip(&self) -> Result<Ipv4Addr> {
        Ok(Ipv4Addr(
            self.field_bytes(FieldId::Sip)?.try_into().unwrap(),
        ))
    }

    /// Destination IPv4 address.
    pub fn dip(&self) -> Result<Ipv4Addr> {
        Ok(Ipv4Addr(
            self.field_bytes(FieldId::Dip)?.try_into().unwrap(),
        ))
    }

    /// L4 source port.
    pub fn sport(&self) -> Result<u16> {
        Ok(u16::from_be_bytes(
            self.field_bytes(FieldId::Sport)?.try_into().unwrap(),
        ))
    }

    /// L4 destination port.
    pub fn dport(&self) -> Result<u16> {
        Ok(u16::from_be_bytes(
            self.field_bytes(FieldId::Dport)?.try_into().unwrap(),
        ))
    }

    /// Set the source IPv4 address (checksums refreshed separately).
    pub fn set_sip(&mut self, a: Ipv4Addr) -> Result<()> {
        self.set_field_bytes(FieldId::Sip, &a.0)
    }

    /// Set the destination IPv4 address.
    pub fn set_dip(&mut self, a: Ipv4Addr) -> Result<()> {
        self.set_field_bytes(FieldId::Dip, &a.0)
    }

    /// Set the L4 source port.
    pub fn set_sport(&mut self, p: u16) -> Result<()> {
        self.set_field_bytes(FieldId::Sport, &p.to_be_bytes())
    }

    /// Set the L4 destination port.
    pub fn set_dport(&mut self, p: u16) -> Result<()> {
        self.set_field_bytes(FieldId::Dport, &p.to_be_bytes())
    }

    /// IPv4 TTL.
    pub fn ttl(&self) -> Result<u8> {
        Ok(self.field_bytes(FieldId::Ttl)?[0])
    }

    /// Set the IPv4 TTL.
    pub fn set_ttl(&mut self, ttl: u8) -> Result<()> {
        self.set_field_bytes(FieldId::Ttl, &[ttl])
    }

    /// Source MAC address.
    pub fn smac(&self) -> Result<MacAddr> {
        Ok(MacAddr(
            self.field_bytes(FieldId::Smac)?.try_into().unwrap(),
        ))
    }

    /// Destination MAC address.
    pub fn dmac(&self) -> Result<MacAddr> {
        Ok(MacAddr(
            self.field_bytes(FieldId::Dmac)?.try_into().unwrap(),
        ))
    }

    /// The 5-tuple (sip, dip, sport, dport, proto) used for flow hashing.
    pub fn five_tuple(&self) -> Result<(Ipv4Addr, Ipv4Addr, u16, u16, u8)> {
        let l = self.parsed()?;
        Ok((
            self.sip()?,
            self.dip()?,
            self.sport()?,
            self.dport()?,
            l.l4_proto,
        ))
    }

    /// Application payload bytes.
    pub fn payload(&self) -> Result<&[u8]> {
        let l = self.parsed()?;
        Ok(&self.data()[l.payload..])
    }

    /// Mutable application payload bytes.
    pub fn payload_mut(&mut self) -> Result<&mut [u8]> {
        let l = self.parse()?;
        let range = l.payload..self.len;
        let start = self.start;
        Ok(&mut self.buf[start + range.start..start + range.end])
    }

    // -- structural edits -------------------------------------------------

    /// Insert `n` zero bytes at frame-relative offset `at`, using headroom
    /// when possible so the payload does not move. Parse state is
    /// invalidated; callers must fix length/protocol fields themselves.
    pub fn insert_bytes(&mut self, at: usize, n: usize) -> Result<()> {
        if at > self.len {
            return Err(PacketError::Malformed {
                what: "insert offset beyond frame",
            });
        }
        if self.start >= n {
            // Shift the prefix left into headroom.
            let new_start = self.start - n;
            self.buf.copy_within(self.start..self.start + at, new_start);
            self.start = new_start;
        } else {
            if self.start + self.len + n > CAPACITY {
                return Err(PacketError::NoCapacity {
                    requested: n,
                    capacity: CAPACITY - self.start - self.len,
                });
            }
            // Shift the suffix right.
            self.buf
                .copy_within(self.start + at..self.start + self.len, self.start + at + n);
        }
        self.len += n;
        for b in &mut self.buf[self.start + at..self.start + at + n] {
            *b = 0;
        }
        self.invalidate();
        Ok(())
    }

    /// Remove `range` (frame-relative) from the frame. Parse state is
    /// invalidated; callers fix length/protocol fields.
    pub fn remove_bytes(&mut self, range: Range<usize>) -> Result<()> {
        if range.start > range.end || range.end > self.len {
            return Err(PacketError::Malformed {
                what: "remove range beyond frame",
            });
        }
        let n = range.len();
        // Shift the prefix right (cheap when the removed header is near the
        // front, which is always the case for AH removal).
        self.buf
            .copy_within(self.start..self.start + range.start, self.start + n);
        self.start += n;
        self.len -= n;
        self.invalidate();
        Ok(())
    }

    /// Recompute the IPv4 header checksum and, when the payload is intact,
    /// the L4 checksum. Header-only copies get only the IPv4 fix-up.
    pub fn finalize_checksums(&mut self) -> Result<()> {
        let l = self.parse()?;
        let (sip, dip) = (self.sip()?, self.dip()?);
        let start = self.start;
        if !self.header_only && l.ah.is_none() {
            let seg = &mut self.buf[start + l.l4..start + self.len];
            match l.l4_proto {
                ipv4::PROTO_TCP => tcp::fill_checksum(seg, sip, dip),
                ipv4::PROTO_UDP => udp::fill_checksum(seg, sip, dip),
                _ => {}
            }
        }
        let ip_hdr = &mut self.buf[start + l.l3..start + l.l4];
        ipv4::refresh_checksum(ip_hdr);
        Ok(())
    }

    /// Patch the IPv4 total-length field to match the current frame length
    /// and refresh the header checksum (used after add/remove of headers).
    pub fn sync_ip_total_len(&mut self) -> Result<()> {
        let l = self.parse()?;
        let total = (self.len - l.l3) as u16;
        let start = self.start;
        let ip = &mut self.buf[start + l.l3..];
        ip[ipv4::offsets::TOTAL_LEN..ipv4::offsets::TOTAL_LEN + 2]
            .copy_from_slice(&total.to_be_bytes());
        let hl = (ip[0] & 0x0f) as usize * 4;
        ipv4::refresh_checksum(&mut ip[..hl]);
        Ok(())
    }

    /// Replace the application payload with `new_payload` (which may have
    /// a different length), fixing the IPv4 total length. Used by
    /// payload-rewriting NFs (compression) and by the merger's
    /// `modify(v1.payload, vX.payload)` when lengths differ.
    ///
    /// Checksums are deliberately *not* recomputed here: the graph output
    /// path finalizes them exactly once, so parallel and sequential
    /// composition stay bit-identical regardless of when the payload was
    /// rewritten relative to header additions.
    pub fn replace_payload(&mut self, new_payload: &[u8]) -> Result<()> {
        let l = self.parse()?;
        let old_len = self.len - l.payload;
        let new_len = new_payload.len();
        if new_len > old_len {
            self.insert_bytes(self.len, new_len - old_len)?;
        } else if new_len < old_len {
            self.remove_bytes(l.payload..l.payload + (old_len - new_len))?;
        }
        let start = self.start;
        self.buf[start + l.payload..start + l.payload + new_len].copy_from_slice(new_payload);
        self.invalidate();
        self.sync_ip_total_len()?;
        Ok(())
    }

    /// Produce a **header-only copy** (paper OP#2): copies bytes up to the
    /// payload, truncates, rewrites the IPv4 total length to "the length of
    /// the header itself" so parallel NFs receive a valid packet, and tags
    /// the copy with `version`.
    pub fn header_only_copy(&self, version: u8) -> Result<Packet> {
        let l = self.parsed()?;
        let hdr_len = l.payload;
        let mut copy = Packet::new();
        copy.set_frame(&self.data()[..hdr_len])?;
        copy.meta = self.meta.with_version(version);
        copy.header_only = true;
        copy.parse()?;
        copy.sync_ip_total_len()?;
        Ok(copy)
    }

    /// Produce a full copy tagged with `version`.
    pub fn full_copy(&self, version: u8) -> Result<Packet> {
        let mut copy = Packet::from_bytes(self.data())?;
        copy.meta = self.meta.with_version(version);
        copy.header_only = self.header_only;
        Ok(copy)
    }

    /// Length of all headers (Ethernet through L4) in bytes.
    pub fn header_len(&self) -> Result<usize> {
        Ok(self.parsed()?.payload)
    }

    /// Raw pointer to the first frame byte. Used by the pool's field-scoped
    /// writers; see the aliasing contract in [`crate::pool`].
    pub(crate) fn frame_ptr(&self) -> *const u8 {
        self.buf[self.start..].as_ptr()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Build a valid Ethernet/IPv4/TCP frame with `payload_len` bytes
    /// (delegates to the shared [`crate::testutil`] builders).
    pub(crate) fn tcp_frame(payload_len: usize) -> Vec<u8> {
        crate::testutil::tcp_frame_bytes(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1234,
            80,
            &crate::testutil::patterned_payload(payload_len),
        )
    }

    #[test]
    fn parse_and_field_access() {
        let mut p = Packet::from_bytes(&tcp_frame(10)).unwrap();
        let l = p.parse().unwrap();
        assert_eq!(l.l3, 14);
        assert_eq!(l.l4, 34);
        assert_eq!(l.payload, 54);
        assert_eq!(p.sip().unwrap(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(p.dport().unwrap(), 80);
        assert_eq!(p.payload().unwrap().len(), 10);
    }

    #[test]
    fn field_rewrite_roundtrips() {
        let mut p = Packet::from_bytes(&tcp_frame(4)).unwrap();
        p.set_dip(Ipv4Addr::new(1, 2, 3, 4)).unwrap();
        p.set_sport(9999).unwrap();
        p.finalize_checksums().unwrap();
        assert_eq!(p.dip().unwrap(), Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(p.sport().unwrap(), 9999);
        // Checksums verify after finalize.
        let l = p.parse().unwrap();
        let d = p.data();
        assert!(ipv4::Ipv4View::new(&d[l.l3..]).unwrap().verify_checksum());
        assert!(tcp::verify_checksum(
            &d[l.l4..],
            p.sip().unwrap(),
            p.dip().unwrap()
        ));
    }

    #[test]
    fn header_only_copy_is_valid_and_short() {
        let p = Packet::from_bytes(&tcp_frame(700)).unwrap();
        let c = p.header_only_copy(2).unwrap();
        assert!(c.is_header_only());
        assert_eq!(c.len(), 54);
        assert_eq!(c.meta().version(), 2);
        // The copy reparses cleanly with a consistent total length.
        let l = c.parsed().unwrap();
        let ip = ipv4::Ipv4View::new(&c.data()[l.l3..]).unwrap();
        assert_eq!(ip.total_len(), 40);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn insert_uses_headroom_and_keeps_bytes() {
        let frame = tcp_frame(8);
        let mut p = Packet::from_bytes(&frame).unwrap();
        p.parse().unwrap();
        p.insert_bytes(34, 24).unwrap(); // room for an AH after IPv4
        assert_eq!(p.len(), frame.len() + 24);
        assert_eq!(&p.data()[..34], &frame[..34]);
        assert_eq!(&p.data()[34..58], &[0u8; 24]);
        assert_eq!(&p.data()[58..], &frame[34..]);
    }

    #[test]
    fn remove_undoes_insert() {
        let frame = tcp_frame(16);
        let mut p = Packet::from_bytes(&frame).unwrap();
        p.insert_bytes(34, 24).unwrap();
        p.remove_bytes(34..58).unwrap();
        assert_eq!(p.data(), &frame[..]);
    }

    #[test]
    fn replace_payload_grows_and_shrinks() {
        let frame = tcp_frame(20);
        let mut p = Packet::from_bytes(&frame).unwrap();
        p.replace_payload(b"tiny").unwrap();
        assert_eq!(p.payload().unwrap(), b"tiny");
        assert_eq!(p.len(), 54 + 4);
        let l = p.parse().unwrap();
        let ip = ipv4::Ipv4View::new(&p.data()[l.l3..]).unwrap();
        assert_eq!(ip.total_len() as usize, 40 + 4);
        assert!(ip.verify_checksum());
        let big = vec![7u8; 300];
        p.replace_payload(&big).unwrap();
        assert_eq!(p.payload().unwrap(), &big[..]);
        p.finalize_checksums().unwrap();
        assert!(tcp::verify_checksum(
            &p.data()[p.parsed().unwrap().l4..],
            p.sip().unwrap(),
            p.dip().unwrap()
        ));
        // Headers untouched throughout.
        assert_eq!(p.dport().unwrap(), 80);
    }

    #[test]
    fn insert_beyond_capacity_fails() {
        let mut p = Packet::from_bytes(&tcp_frame(1400)).unwrap();
        // Exhaust the headroom first, then overflow the tail.
        assert!(p.insert_bytes(0, HEADROOM).is_ok());
        assert!(p.insert_bytes(0, 600).is_err());
    }

    #[test]
    fn oversize_frame_rejected() {
        assert!(Packet::from_bytes(&vec![0u8; CAPACITY]).is_err());
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut frame = tcp_frame(0);
        frame[12] = 0x08;
        frame[13] = 0x06; // ARP
        let mut p = Packet::from_bytes(&frame).unwrap();
        assert!(p.parse().is_err());
    }

    #[test]
    fn nil_flag() {
        let mut p = Packet::new();
        assert!(!p.is_nil());
        p.set_nil(true);
        assert!(p.is_nil());
    }

    #[test]
    fn five_tuple_extraction() {
        let p = Packet::from_bytes(&tcp_frame(0)).unwrap();
        let (s, d, sp, dp, proto) = p.five_tuple().unwrap();
        assert_eq!(s, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(d, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!((sp, dp, proto), (1234, 80, ipv4::PROTO_TCP));
    }
}
