//! Hostile traffic profiles for the adversarial soak harness.
//!
//! Three attack shapes the NFP dataplane must absorb without violating
//! its accounting invariants (ROADMAP item 5):
//!
//! * **SYN flood** — minimum-size frames, a fresh spoofed source tuple
//!   on every packet, so per-flow state (PID assignment, merger hash
//!   spreading, RSS sharding) sees maximal churn.
//! * **Elephant/mice mix** — a handful of near-MTU bulk flows swamped
//!   by a crowd of minimum-size mice, skewing both the size and the
//!   flow-popularity distributions at once.
//! * **Malformed framing** — [`corrupt_frame`] damages an otherwise
//!   valid frame so the classifier must reject it (truncation below
//!   header size, a non-IPv4 ethertype, or an unsupported L4 protocol).
//!
//! Everything is driven by one seeded [`rand::rngs::StdRng`], so a soak
//! failure replays exactly from its printed seed.

use crate::gen::{build_tcp_frame, validate_rate, SpecError};
use nfp_packet::ipv4::Ipv4Addr;
use nfp_packet::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a [`HostileGenerator`] synthesizes packets.
#[derive(Debug, Clone, PartialEq)]
pub enum HostileProfile {
    /// SYN-flood: every frame is minimum-size and carries a spoofed,
    /// never-repeating source tuple aimed at one victim address.
    SynFlood {
        /// Victim destination address.
        victim: Ipv4Addr,
        /// Victim destination port.
        port: u16,
    },
    /// Elephant/mice mix: `elephants` long-lived near-MTU flows plus
    /// `mice` minimum-size flows; each emission is an elephant packet
    /// with probability `elephant_share`.
    ElephantMice {
        /// Number of bulk-transfer flows (near-MTU frames).
        elephants: usize,
        /// Number of short-lived flows (minimum-size frames).
        mice: usize,
        /// Probability an emission comes from an elephant flow.
        elephant_share: f64,
    },
}

/// Hostile generator configuration.
#[derive(Debug, Clone)]
pub struct HostileSpec {
    /// Attack shape.
    pub profile: HostileProfile,
    /// Fraction of emitted frames additionally corrupted with
    /// [`corrupt_frame`] (0.0 disables).
    pub malformed_rate: f64,
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
}

impl HostileSpec {
    /// A SYN flood against a fixed victim with no malformed frames.
    pub fn syn_flood(seed: u64) -> Self {
        Self {
            profile: HostileProfile::SynFlood {
                victim: Ipv4Addr::from_u32((10 << 24) | (99 << 16) | (99 << 8) | 99),
                port: 80,
            },
            malformed_rate: 0.0,
            seed,
        }
    }

    /// The canonical elephant/mice skew: 4 elephants carrying 70 % of
    /// packets over 512 mice.
    pub fn elephant_mice(seed: u64) -> Self {
        Self {
            profile: HostileProfile::ElephantMice {
                elephants: 4,
                mice: 512,
                elephant_share: 0.7,
            },
            malformed_rate: 0.0,
            seed,
        }
    }

    /// Validate rate knobs (shares and rates must be in `[0, 1]`).
    pub fn validate(&self) -> Result<(), SpecError> {
        validate_rate("malformed_rate", self.malformed_rate)?;
        if let HostileProfile::ElephantMice { elephant_share, .. } = self.profile {
            validate_rate("elephant_share", elephant_share)?;
        }
        Ok(())
    }
}

/// Deterministic hostile packet generator.
#[derive(Debug)]
pub struct HostileGenerator {
    spec: HostileSpec,
    rng: StdRng,
    emitted: u64,
}

impl HostileGenerator {
    /// Create a generator.
    ///
    /// # Panics
    /// If [`HostileSpec::validate`] rejects the spec.
    pub fn new(spec: HostileSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid HostileSpec: {e}");
        }
        let rng = StdRng::seed_from_u64(spec.seed);
        Self {
            spec,
            rng,
            emitted: 0,
        }
    }

    /// Total packets emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Generate the next packet.
    pub fn next_packet(&mut self) -> Packet {
        let mut pkt = match self.spec.profile {
            HostileProfile::SynFlood { victim, port } => {
                // Spoofed source: a fresh tuple every packet, drawn from
                // the full non-reserved space so flow state never reuses.
                let sip = Ipv4Addr::from_u32((self.rng.gen::<u32>() | 0x0100_0000) & 0x7FFF_FFFF);
                let sport = 1024 + (self.rng.gen_range(0..64_000u64) as u16);
                // Minimum-size frame: 54 B of headers + 10 B zero pad.
                build_tcp_frame(sip, victim, sport, port, &[0u8; 10])
            }
            HostileProfile::ElephantMice {
                elephants,
                mice,
                elephant_share,
            } => {
                let is_elephant =
                    elephants > 0 && (mice == 0 || self.rng.gen::<f64>() < elephant_share);
                let (base, count, frame_len) = if is_elephant {
                    (1u32 << 16, elephants.max(1) as u64, 1400usize)
                } else {
                    (2u32 << 16, mice.max(1) as u64, 64usize)
                };
                let idx = self.rng.gen_range(0..count) as u32;
                let sip = Ipv4Addr::from_u32((172 << 24) | base | idx);
                let dip = Ipv4Addr::from_u32((10 << 24) | (2 << 16) | 1);
                let mut payload = vec![0u8; frame_len - 54];
                nfp_packet::testutil::tag_payload_index(&mut payload, self.emitted);
                build_tcp_frame(sip, dip, 30_000 + idx as u16, 443, &payload)
            }
        };
        if self.spec.malformed_rate > 0.0 && self.rng.gen::<f64>() < self.spec.malformed_rate {
            corrupt_frame(&mut pkt, &mut self.rng);
        }
        self.emitted += 1;
        pkt
    }

    /// Generate `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }
}

/// Damage a well-formed frame so the classifier must reject it.
///
/// Picks one of three corruptions, uniformly:
/// 1. **Truncation** — the frame is cut to fewer than the 34 bytes an
///    Ethernet + IPv4 header needs, yielding `PacketError::Truncated`.
/// 2. **Foreign ethertype** — the ethertype becomes IPv6 (`0x86DD`),
///    yielding a "not an IPv4 frame" parse failure.
/// 3. **Unsupported L4 protocol** — the IPv4 protocol byte becomes an
///    experimental value (`0xFD`), failing the L4 dispatch.
///
/// The packet's cached parse state is invalidated; callers get a frame
/// that deterministically fails `Packet::parse`.
pub fn corrupt_frame<R: Rng + ?Sized>(pkt: &mut Packet, rng: &mut R) {
    match rng.gen_range(0..3u64) {
        0 => {
            let keep = rng.gen_range(0..34u64) as usize;
            let prefix = pkt.data()[..keep.min(pkt.len())].to_vec();
            pkt.set_frame(&prefix)
                .expect("shrinking a frame always fits");
        }
        1 => {
            let data = pkt.data_mut();
            if data.len() >= 14 {
                data[12] = 0x86;
                data[13] = 0xDD;
            }
        }
        _ => {
            let data = pkt.data_mut();
            if data.len() >= 24 {
                data[23] = 0xFD;
            }
        }
    }
    pkt.invalidate();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syn_flood_is_min_size_and_flow_churning() {
        let mut g = HostileGenerator::new(HostileSpec::syn_flood(11));
        let mut tuples = std::collections::HashSet::new();
        for _ in 0..500 {
            let mut p = g.next_packet();
            assert_eq!(p.len(), 64);
            p.parse().unwrap();
            tuples.insert(p.five_tuple().unwrap());
        }
        // Spoofed sources: nearly every packet is a brand-new flow.
        assert!(tuples.len() > 490, "distinct tuples = {}", tuples.len());
    }

    #[test]
    fn elephant_mice_is_bimodal_and_skewed() {
        let mut g = HostileGenerator::new(HostileSpec::elephant_mice(12));
        let mut big = 0usize;
        let mut flows = std::collections::HashSet::new();
        for _ in 0..2000 {
            let mut p = g.next_packet();
            p.parse().unwrap();
            flows.insert(p.five_tuple().unwrap());
            match p.len() {
                1400 => big += 1,
                64 => {}
                other => panic!("unexpected frame size {other}"),
            }
        }
        // ~70 % of packets from just 4 elephant flows.
        assert!((1200..1600).contains(&big), "elephant packets = {big}");
        assert!(
            flows.len() > 100 && flows.len() <= 516,
            "flows = {}",
            flows.len()
        );
    }

    #[test]
    fn malformed_rate_yields_unparseable_frames() {
        let mut spec = HostileSpec::syn_flood(13);
        spec.malformed_rate = 0.5;
        let mut g = HostileGenerator::new(spec);
        let bad = (0..1000)
            .filter(|_| g.next_packet().parse().is_err())
            .count();
        assert!((400..600).contains(&bad), "bad = {bad}");
    }

    #[test]
    fn corrupt_frame_covers_truncation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut truncated = 0usize;
        for _ in 0..200 {
            let mut g = HostileGenerator::new(HostileSpec::syn_flood(rng.next_u64()));
            let mut p = g.next_packet();
            corrupt_frame(&mut p, &mut rng);
            assert!(p.parse().is_err());
            if p.len() < 34 {
                truncated += 1;
            }
        }
        assert!(truncated > 0, "no truncation variant drawn in 200 tries");
    }

    #[test]
    fn deterministic_per_seed() {
        let frames = |seed: u64| -> Vec<Vec<u8>> {
            let mut spec = HostileSpec::elephant_mice(seed);
            spec.malformed_rate = 0.2;
            HostileGenerator::new(spec)
                .batch(50)
                .iter()
                .map(|p| p.data().to_vec())
                .collect()
        };
        assert_eq!(frames(9), frames(9));
        assert_ne!(frames(9), frames(10));
    }

    #[test]
    #[should_panic(expected = "invalid HostileSpec")]
    fn invalid_rate_panics() {
        let mut spec = HostileSpec::syn_flood(1);
        spec.malformed_rate = -0.5;
        let _ = HostileGenerator::new(spec);
    }
}
