//! Latency and throughput measurement.

use std::time::{Duration, Instant};

/// Records per-packet latencies and summarizes them.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples: Vec<Duration>,
}

/// Summary statistics over recorded latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Minimum.
    pub min: Duration,
    /// Median (p50).
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum.
    pub max: Duration,
}

impl LatencyRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with pre-allocated capacity (avoid growth on the hot path).
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples: Vec::with_capacity(n),
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Merge another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Summarize. Returns `None` when no samples were recorded — a run
    /// that delivered zero packets has no latency distribution, and
    /// callers must not see zeroed garbage in its place.
    pub fn summary(&self) -> Option<LatencySummary> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let count = sorted.len();
        // Nearest-rank percentiles: the p-th percentile is the smallest
        // sample with at least p·N samples ≤ it. `max(1).min(count)` keeps
        // the rank in bounds without `clamp`'s min>max panic, so the
        // closure is total even if the empty guard above ever changes.
        let pct = |p: f64| -> Duration {
            let rank = (p * count as f64).ceil() as usize;
            sorted[rank.max(1).min(count) - 1]
        };
        let total: Duration = sorted.iter().sum();
        Some(LatencySummary {
            count,
            mean: total / count as u32,
            min: sorted[0],
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: sorted[count - 1],
        })
    }
}

impl LatencySummary {
    /// Mean latency in microseconds (the paper's reporting unit).
    pub fn mean_us(&self) -> f64 {
        self.mean.as_secs_f64() * 1e6
    }
}

/// Measures sustained packet throughput.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    start: Instant,
    packets: u64,
    bytes: u64,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Start the clock.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            packets: 0,
            bytes: 0,
        }
    }

    /// Count one packet of `bytes` bytes.
    pub fn count(&mut self, bytes: usize) {
        self.packets += 1;
        self.bytes += bytes as u64;
    }

    /// Count `n` packets totalling `bytes` bytes.
    pub fn count_batch(&mut self, n: u64, bytes: u64) {
        self.packets += n;
        self.bytes += bytes;
    }

    /// Packets counted.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Elapsed time since creation.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Throughput in packets/second over the elapsed window.
    pub fn pps(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.packets as f64 / secs
    }

    /// Throughput in Mpps (the paper's unit).
    pub fn mpps(&self) -> f64 {
        self.pps() / 1e6
    }

    /// Goodput in Gbit/s (frame bytes on the wire, no preamble/IFG).
    pub fn gbps(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / secs / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(Duration::from_micros(i));
        }
        let s = r.summary().unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, Duration::from_micros(1));
        assert_eq!(s.max, Duration::from_micros(100));
        assert_eq!(s.p50, Duration::from_micros(50));
        assert_eq!(s.p90, Duration::from_micros(90));
        assert_eq!(s.p99, Duration::from_micros(99));
        assert!((s.mean_us() - 50.5).abs() < 0.01);
    }

    #[test]
    fn empty_summary_is_none() {
        assert!(LatencyRecorder::new().summary().is_none());
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record(Duration::from_micros(1));
        let mut b = LatencyRecorder::new();
        b.record(Duration::from_micros(3));
        a.merge(&b);
        let s = a.summary().unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, Duration::from_micros(2));
    }

    #[test]
    fn single_sample_summary() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_micros(7));
        let s = r.summary().unwrap();
        assert_eq!(s.p50, s.max);
        assert_eq!(s.min, s.max);
    }

    #[test]
    fn throughput_counts() {
        let mut t = ThroughputMeter::new();
        t.count(64);
        t.count_batch(9, 9 * 64);
        assert_eq!(t.packets(), 10);
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.pps() > 0.0);
        assert!(t.gbps() > 0.0);
        assert!(t.mpps() < 1.0);
    }
}
