//! Packet-size distributions.
//!
//! The paper evaluates with fixed sizes (64 B–1500 B sweeps) and, for the
//! real-world experiments, "according to the packet size distribution in
//! data centers from [Benson et al. 2010]", whose average packet size is
//! "around 724 bytes" (§4.2/§6.4).

use rand::Rng;

/// A distribution over Ethernet frame sizes (bytes, including L2 header).
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDistribution {
    /// Every frame has the same size.
    Fixed(usize),
    /// A discrete empirical mix: `(frame_size, weight)` pairs.
    Empirical(Vec<(usize, f64)>),
}

impl SizeDistribution {
    /// Smallest legal frame we generate (header-only TCP packet).
    pub const MIN_FRAME: usize = 64;
    /// Largest legal frame (Ethernet MTU + L2).
    pub const MAX_FRAME: usize = 1514;

    /// The data-center mix derived from Benson et al.: bimodal, most
    /// packets either minimum-size (ACKs, handshakes) or near-MTU (bulk
    /// transfer), calibrated so the mean is ≈ 724 B — the figure the
    /// paper's resource-overhead equation plugs in.
    pub fn datacenter() -> Self {
        SizeDistribution::Empirical(vec![(64, 0.40), (200, 0.05), (576, 0.10), (1400, 0.45)])
    }

    /// Mean frame size in bytes.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDistribution::Fixed(s) => *s as f64,
            SizeDistribution::Empirical(points) => {
                let total: f64 = points.iter().map(|(_, w)| w).sum();
                points.iter().map(|(s, w)| *s as f64 * w).sum::<f64>() / total
            }
        }
    }

    /// Draw one frame size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let size = match self {
            SizeDistribution::Fixed(s) => *s,
            SizeDistribution::Empirical(points) => {
                let total: f64 = points.iter().map(|(_, w)| w).sum();
                let mut x = rng.gen::<f64>() * total;
                let mut chosen = points.last().map(|(s, _)| *s).unwrap_or(Self::MIN_FRAME);
                for (s, w) in points {
                    if x < *w {
                        chosen = *s;
                        break;
                    }
                    x -= w;
                }
                chosen
            }
        };
        size.clamp(Self::MIN_FRAME, Self::MAX_FRAME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn datacenter_mean_is_near_724() {
        let mean = SizeDistribution::datacenter().mean();
        assert!((mean - 724.0).abs() < 5.0, "mean = {mean}");
    }

    #[test]
    fn fixed_always_returns_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = SizeDistribution::Fixed(128);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 128);
        }
        assert_eq!(d.mean(), 128.0);
    }

    #[test]
    fn sizes_clamped_to_legal_frames() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(SizeDistribution::Fixed(10).sample(&mut rng), 64);
        assert_eq!(SizeDistribution::Fixed(9000).sample(&mut rng), 1514);
    }

    #[test]
    fn empirical_sampling_matches_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SizeDistribution::Empirical(vec![(64, 0.5), (1400, 0.5)]);
        let mut small = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            if d.sample(&mut rng) == 64 {
                small += 1;
            }
        }
        let frac = small as f64 / N as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn empirical_mean_sampled_close_to_analytic() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = SizeDistribution::datacenter();
        let n = 50_000;
        let sum: usize = (0..n).map(|_| d.sample(&mut rng)).sum();
        let sampled = sum as f64 / n as f64;
        assert!((sampled - d.mean()).abs() < 10.0, "sampled = {sampled}");
    }
}
