//! Flow-structured packet synthesis.

use crate::sizes::SizeDistribution;
use nfp_packet::ipv4::Ipv4Addr;
use nfp_packet::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a [`TrafficSpec`] was rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecError {
    /// A per-packet rate knob was outside `[0, 1]` (or NaN).
    RateOutOfRange {
        /// Which knob.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecError::RateOutOfRange { field, value } => {
                write!(f, "TrafficSpec.{field} = {value} is not a rate in [0, 1]")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Check that `value` is a valid per-packet rate.
pub(crate) fn validate_rate(field: &'static str, value: f64) -> Result<(), SpecError> {
    if value.is_nan() || !(0.0..=1.0).contains(&value) {
        return Err(SpecError::RateOutOfRange { field, value });
    }
    Ok(())
}

/// Traffic generator configuration.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Number of distinct flows (5-tuples) to cycle through.
    pub flows: usize,
    /// Frame size distribution.
    pub sizes: SizeDistribution,
    /// Fraction of packets whose payload embeds an IDS-triggering marker
    /// (used by drop-path tests; 0.0 disables).
    pub malicious_fraction: f64,
    /// Marker embedded in malicious payloads.
    pub malicious_marker: Vec<u8>,
    /// Fraction of emitted frames corrupted after construction —
    /// truncated below header size or damaged so they no longer parse
    /// (see [`crate::hostile::corrupt_frame`]). Lets any existing bench
    /// opt into hostile framing without a separate generator; 0.0
    /// disables and leaves the RNG stream of older seeds untouched.
    pub malformed_fraction: f64,
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        Self {
            flows: 64,
            sizes: SizeDistribution::Fixed(64),
            malicious_fraction: 0.0,
            malicious_marker: b"EVIL0001SIG".to_vec(),
            malformed_fraction: 0.0,
            seed: 0x0F05_EED1,
        }
    }
}

impl TrafficSpec {
    /// Validate the spec's rate knobs ([`TrafficGenerator::new`] calls
    /// this and panics with the error; call it directly to handle the
    /// rejection).
    pub fn validate(&self) -> Result<(), SpecError> {
        validate_rate("malicious_fraction", self.malicious_fraction)?;
        validate_rate("malformed_fraction", self.malformed_fraction)
    }
}

/// Deterministic packet generator.
#[derive(Debug)]
pub struct TrafficGenerator {
    spec: TrafficSpec,
    rng: StdRng,
    next_flow: usize,
    emitted: u64,
}

impl TrafficGenerator {
    /// Create a generator.
    ///
    /// # Panics
    /// If [`TrafficSpec::validate`] rejects the spec (a rate knob
    /// outside `[0, 1]`).
    pub fn new(spec: TrafficSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid TrafficSpec: {e}");
        }
        let rng = StdRng::seed_from_u64(spec.seed);
        Self {
            spec,
            rng,
            next_flow: 0,
            emitted: 0,
        }
    }

    /// Total packets emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The 5-tuple of flow `i` (stable mapping, round-robin source ports).
    fn flow_tuple(&self, i: usize) -> (Ipv4Addr, Ipv4Addr, u16, u16) {
        let i = i as u32;
        let sip = Ipv4Addr::from_u32((10 << 24) | (1 << 16) | (i % 65_536));
        let dip = Ipv4Addr::from_u32((10 << 24) | (2 << 16) | ((i * 7) % 65_536));
        let sport = 20_000 + (i % 20_000) as u16;
        let dport = 80 + (i % 8) as u16 * 1000;
        (sip, dip, sport, dport)
    }

    /// Generate the next packet (TCP, valid checksums, payload filled with
    /// a deterministic pattern and tagged with the packet index in its
    /// first 8 bytes when it fits — the §6.4 "unique packet ID in the
    /// payload" correctness device).
    pub fn next_packet(&mut self) -> Packet {
        let flow = self.next_flow;
        self.next_flow = (self.next_flow + 1) % self.spec.flows.max(1);
        let (sip, dip, sport, dport) = self.flow_tuple(flow);
        let frame_len = self.spec.sizes.sample(&mut self.rng).max(54);
        let payload_len = frame_len - 54; // eth 14 + ip 20 + tcp 20
        let mut payload = nfp_packet::testutil::indexed_payload(payload_len, self.emitted);
        let malicious = self.spec.malicious_fraction > 0.0
            && self.rng.gen::<f64>() < self.spec.malicious_fraction;
        if malicious && payload_len >= 8 + self.spec.malicious_marker.len() {
            let m = self.spec.malicious_marker.clone();
            payload[8..8 + m.len()].copy_from_slice(&m);
        }
        self.emitted += 1;
        let mut pkt = build_tcp_frame(sip, dip, sport, dport, &payload);
        if self.spec.malformed_fraction > 0.0
            && self.rng.gen::<f64>() < self.spec.malformed_fraction
        {
            crate::hostile::corrupt_frame(&mut pkt, &mut self.rng);
        }
        pkt
    }

    /// Generate `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }
}

/// Build a complete, checksum-valid Ethernet/IPv4/TCP frame (delegates to
/// the workspace-shared [`nfp_packet::testutil`] emitter).
pub fn build_tcp_frame(
    sip: Ipv4Addr,
    dip: Ipv4Addr,
    sport: u16,
    dport: u16,
    payload: &[u8],
) -> Packet {
    nfp_packet::testutil::tcp_packet(sip, dip, sport, dport, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TrafficSpec {
        TrafficSpec {
            flows: 8,
            sizes: SizeDistribution::Fixed(200),
            seed: 42,
            ..TrafficSpec::default()
        }
    }

    #[test]
    fn packets_are_valid_and_sized() {
        let mut g = TrafficGenerator::new(spec());
        for _ in 0..50 {
            let mut p = g.next_packet();
            let l = p.parse().unwrap();
            assert_eq!(p.len(), 200);
            assert_eq!(l.payload, 54);
        }
        assert_eq!(g.emitted(), 50);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Vec<u8>> = TrafficGenerator::new(spec())
            .batch(20)
            .iter()
            .map(|p| p.data().to_vec())
            .collect();
        let b: Vec<Vec<u8>> = TrafficGenerator::new(spec())
            .batch(20)
            .iter()
            .map(|p| p.data().to_vec())
            .collect();
        assert_eq!(a, b);
        // With a randomized size distribution, different seeds diverge.
        let randomized = |seed| TrafficSpec {
            sizes: SizeDistribution::datacenter(),
            seed,
            ..spec()
        };
        let sizes = |s: TrafficSpec| -> Vec<usize> {
            TrafficGenerator::new(s)
                .batch(50)
                .iter()
                .map(|p| p.len())
                .collect()
        };
        assert_eq!(sizes(randomized(7)), sizes(randomized(7)));
        assert_ne!(sizes(randomized(7)), sizes(randomized(8)));
    }

    #[test]
    fn flows_cycle_round_robin() {
        let mut g = TrafficGenerator::new(spec());
        let first: Vec<_> = (0..8)
            .map(|_| g.next_packet().five_tuple().unwrap())
            .collect();
        let second: Vec<_> = (0..8)
            .map(|_| g.next_packet().five_tuple().unwrap())
            .collect();
        assert_eq!(first, second);
        let distinct: std::collections::HashSet<_> = first.iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn payload_carries_packet_index() {
        let mut g = TrafficGenerator::new(spec());
        for i in 0..10u64 {
            let p = g.next_packet();
            let payload = p.payload().unwrap();
            assert_eq!(u64::from_be_bytes(payload[..8].try_into().unwrap()), i);
        }
    }

    #[test]
    fn malicious_fraction_injects_markers() {
        let mut s = spec();
        s.malicious_fraction = 0.5;
        s.sizes = SizeDistribution::Fixed(200);
        let mut g = TrafficGenerator::new(s);
        let hits = (0..1000)
            .filter(|_| {
                let p = g.next_packet();
                let payload = p.payload().unwrap();
                payload
                    .windows(b"EVIL0001SIG".len())
                    .any(|w| w == b"EVIL0001SIG")
            })
            .count();
        assert!(hits > 400 && hits < 600, "hits = {hits}");
    }

    #[test]
    fn malformed_fraction_corrupts_roughly_that_share() {
        let mut s = spec();
        s.malformed_fraction = 0.3;
        let mut g = TrafficGenerator::new(s);
        let bad = (0..1000)
            .filter(|_| g.next_packet().parse().is_err())
            .count();
        assert!((200..400).contains(&bad), "bad = {bad}");
    }

    #[test]
    fn zero_malformed_fraction_preserves_rng_stream() {
        let mut tainted = spec();
        tainted.malformed_fraction = 0.0;
        let a: Vec<Vec<u8>> = TrafficGenerator::new(spec())
            .batch(20)
            .iter()
            .map(|p| p.data().to_vec())
            .collect();
        let b: Vec<Vec<u8>> = TrafficGenerator::new(tainted)
            .batch(20)
            .iter()
            .map(|p| p.data().to_vec())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let mut s = spec();
        s.malformed_fraction = 1.5;
        assert_eq!(
            s.validate(),
            Err(SpecError::RateOutOfRange {
                field: "malformed_fraction",
                value: 1.5
            })
        );
        s.malformed_fraction = 0.0;
        s.malicious_fraction = -0.1;
        assert!(s.validate().is_err());
        s.malicious_fraction = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid TrafficSpec")]
    fn generator_panics_on_invalid_spec() {
        let mut s = spec();
        s.malformed_fraction = 2.0;
        let _ = TrafficGenerator::new(s);
    }

    #[test]
    fn min_size_packets_have_no_payload_room() {
        let mut s = spec();
        s.sizes = SizeDistribution::Fixed(64);
        let mut g = TrafficGenerator::new(s);
        let p = g.next_packet();
        assert_eq!(p.payload().unwrap().len(), 10); // 64 - 54
    }
}
