//! Flow-structured packet synthesis.

use crate::sizes::SizeDistribution;
use nfp_packet::ipv4::Ipv4Addr;
use nfp_packet::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Traffic generator configuration.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Number of distinct flows (5-tuples) to cycle through.
    pub flows: usize,
    /// Frame size distribution.
    pub sizes: SizeDistribution,
    /// Fraction of packets whose payload embeds an IDS-triggering marker
    /// (used by drop-path tests; 0.0 disables).
    pub malicious_fraction: f64,
    /// Marker embedded in malicious payloads.
    pub malicious_marker: Vec<u8>,
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        Self {
            flows: 64,
            sizes: SizeDistribution::Fixed(64),
            malicious_fraction: 0.0,
            malicious_marker: b"EVIL0001SIG".to_vec(),
            seed: 0x0F05_EED1,
        }
    }
}

/// Deterministic packet generator.
#[derive(Debug)]
pub struct TrafficGenerator {
    spec: TrafficSpec,
    rng: StdRng,
    next_flow: usize,
    emitted: u64,
}

impl TrafficGenerator {
    /// Create a generator.
    pub fn new(spec: TrafficSpec) -> Self {
        let rng = StdRng::seed_from_u64(spec.seed);
        Self {
            spec,
            rng,
            next_flow: 0,
            emitted: 0,
        }
    }

    /// Total packets emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The 5-tuple of flow `i` (stable mapping, round-robin source ports).
    fn flow_tuple(&self, i: usize) -> (Ipv4Addr, Ipv4Addr, u16, u16) {
        let i = i as u32;
        let sip = Ipv4Addr::from_u32((10 << 24) | (1 << 16) | (i % 65_536));
        let dip = Ipv4Addr::from_u32((10 << 24) | (2 << 16) | ((i * 7) % 65_536));
        let sport = 20_000 + (i % 20_000) as u16;
        let dport = 80 + (i % 8) as u16 * 1000;
        (sip, dip, sport, dport)
    }

    /// Generate the next packet (TCP, valid checksums, payload filled with
    /// a deterministic pattern and tagged with the packet index in its
    /// first 8 bytes when it fits — the §6.4 "unique packet ID in the
    /// payload" correctness device).
    pub fn next_packet(&mut self) -> Packet {
        let flow = self.next_flow;
        self.next_flow = (self.next_flow + 1) % self.spec.flows.max(1);
        let (sip, dip, sport, dport) = self.flow_tuple(flow);
        let frame_len = self.spec.sizes.sample(&mut self.rng).max(54);
        let payload_len = frame_len - 54; // eth 14 + ip 20 + tcp 20
        let mut payload = vec![0u8; payload_len];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = ((i as u64 * 31 + self.emitted) % 251) as u8;
        }
        if payload_len >= 8 {
            payload[..8].copy_from_slice(&self.emitted.to_be_bytes());
        }
        let malicious = self.spec.malicious_fraction > 0.0
            && self.rng.gen::<f64>() < self.spec.malicious_fraction;
        if malicious && payload_len >= 8 + self.spec.malicious_marker.len() {
            let m = self.spec.malicious_marker.clone();
            payload[8..8 + m.len()].copy_from_slice(&m);
        }
        self.emitted += 1;
        build_tcp_frame(sip, dip, sport, dport, &payload)
    }

    /// Generate `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }
}

/// Build a complete, checksum-valid Ethernet/IPv4/TCP frame (delegates to
/// the workspace-shared [`nfp_packet::testutil`] emitter).
pub fn build_tcp_frame(
    sip: Ipv4Addr,
    dip: Ipv4Addr,
    sport: u16,
    dport: u16,
    payload: &[u8],
) -> Packet {
    nfp_packet::testutil::tcp_packet(sip, dip, sport, dport, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TrafficSpec {
        TrafficSpec {
            flows: 8,
            sizes: SizeDistribution::Fixed(200),
            seed: 42,
            ..TrafficSpec::default()
        }
    }

    #[test]
    fn packets_are_valid_and_sized() {
        let mut g = TrafficGenerator::new(spec());
        for _ in 0..50 {
            let mut p = g.next_packet();
            let l = p.parse().unwrap();
            assert_eq!(p.len(), 200);
            assert_eq!(l.payload, 54);
        }
        assert_eq!(g.emitted(), 50);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Vec<u8>> = TrafficGenerator::new(spec())
            .batch(20)
            .iter()
            .map(|p| p.data().to_vec())
            .collect();
        let b: Vec<Vec<u8>> = TrafficGenerator::new(spec())
            .batch(20)
            .iter()
            .map(|p| p.data().to_vec())
            .collect();
        assert_eq!(a, b);
        // With a randomized size distribution, different seeds diverge.
        let randomized = |seed| TrafficSpec {
            sizes: SizeDistribution::datacenter(),
            seed,
            ..spec()
        };
        let sizes = |s: TrafficSpec| -> Vec<usize> {
            TrafficGenerator::new(s)
                .batch(50)
                .iter()
                .map(|p| p.len())
                .collect()
        };
        assert_eq!(sizes(randomized(7)), sizes(randomized(7)));
        assert_ne!(sizes(randomized(7)), sizes(randomized(8)));
    }

    #[test]
    fn flows_cycle_round_robin() {
        let mut g = TrafficGenerator::new(spec());
        let first: Vec<_> = (0..8)
            .map(|_| g.next_packet().five_tuple().unwrap())
            .collect();
        let second: Vec<_> = (0..8)
            .map(|_| g.next_packet().five_tuple().unwrap())
            .collect();
        assert_eq!(first, second);
        let distinct: std::collections::HashSet<_> = first.iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn payload_carries_packet_index() {
        let mut g = TrafficGenerator::new(spec());
        for i in 0..10u64 {
            let p = g.next_packet();
            let payload = p.payload().unwrap();
            assert_eq!(u64::from_be_bytes(payload[..8].try_into().unwrap()), i);
        }
    }

    #[test]
    fn malicious_fraction_injects_markers() {
        let mut s = spec();
        s.malicious_fraction = 0.5;
        s.sizes = SizeDistribution::Fixed(200);
        let mut g = TrafficGenerator::new(s);
        let hits = (0..1000)
            .filter(|_| {
                let p = g.next_packet();
                let payload = p.payload().unwrap();
                payload
                    .windows(b"EVIL0001SIG".len())
                    .any(|w| w == b"EVIL0001SIG")
            })
            .count();
        assert!(hits > 400 && hits < 600, "hits = {hits}");
    }

    #[test]
    fn min_size_packets_have_no_payload_room() {
        let mut s = spec();
        s.sizes = SizeDistribution::Fixed(64);
        let mut g = TrafficGenerator::new(s);
        let p = g.next_packet();
        assert_eq!(p.payload().unwrap().len(), 10); // 64 - 54
    }
}
