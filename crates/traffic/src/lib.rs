//! # nfp-traffic
//!
//! Traffic generation and measurement for the NFP evaluation — the
//! stand-in for the paper's "DPDK based packet generator that runs on a
//! separate server" (§6): packet-size distributions (including the
//! data-center mix from Benson et al. that the paper's resource-overhead
//! analysis uses), flow-structured packet synthesis, and latency/
//! throughput recorders.

#![warn(missing_docs)]

pub mod gen;
pub mod hostile;
pub mod sizes;
pub mod stats;

pub use gen::{SpecError, TrafficGenerator, TrafficSpec};
pub use hostile::{corrupt_frame, HostileGenerator, HostileProfile, HostileSpec};
pub use sizes::SizeDistribution;
pub use stats::{LatencyRecorder, LatencySummary, ThroughputMeter};
