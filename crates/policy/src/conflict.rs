//! Policy conflict detection.
//!
//! The paper notes that "the rules manually written by operators could
//! possibly conflict with each other" and leaves detection to future work
//! (§3). We implement the three conflict classes the paper names, plus the
//! cyclic generalization:
//!
//! * contradictory orders — `Order(NF1,before,NF2)` and `Order(NF2,before,
//!   NF1)`, generalized to any cycle through Order rules;
//! * contradictory positions — `Position(NF,first)` and `Position(NF,last)`;
//! * contradictory priorities — `Priority(A > B)` and `Priority(B > A)`;
//! * order/priority disagreement is *not* a conflict (the paper explicitly
//!   allows both forms to coexist; Order is an intent the orchestrator may
//!   convert into a Priority).

use crate::policy::Policy;
use crate::rule::{NfName, PositionAnchor, Rule};
use std::collections::{HashMap, HashSet};

/// A detected policy conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Conflict {
    /// The `Order` rules form a cycle (e.g. A before B, B before A).
    OrderCycle {
        /// NFs on the detected cycle, in order.
        cycle: Vec<NfName>,
    },
    /// An NF is pinned both first and last.
    ContradictoryPosition {
        /// The doubly pinned NF.
        nf: NfName,
    },
    /// Two NFs are given priority over each other.
    ContradictoryPriority {
        /// One of the NFs.
        a: NfName,
        /// The other NF.
        b: NfName,
    },
    /// Several NFs pinned `first` (or several pinned `last`) — ambiguous
    /// head/tail. The orchestrator would have to pick an arbitrary order.
    AmbiguousAnchor {
        /// The contested anchor.
        anchor: PositionAnchor,
        /// NFs competing for it.
        nfs: Vec<NfName>,
    },
}

impl core::fmt::Display for Conflict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Conflict::OrderCycle { cycle } => {
                write!(f, "Order rules form a cycle: ")?;
                for (i, nf) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{nf}")?;
                }
                Ok(())
            }
            Conflict::ContradictoryPosition { nf } => {
                write!(f, "{nf} is pinned both first and last")
            }
            Conflict::ContradictoryPriority { a, b } => {
                write!(f, "{a} and {b} each claim priority over the other")
            }
            Conflict::AmbiguousAnchor { anchor, nfs } => {
                write!(f, "multiple NFs pinned {anchor}:")?;
                for nf in nfs {
                    write!(f, " {nf}")?;
                }
                Ok(())
            }
        }
    }
}

/// Check a policy for conflicts. An empty result means the orchestrator can
/// compile the policy deterministically.
pub fn check_conflicts(policy: &Policy) -> Vec<Conflict> {
    let mut conflicts = Vec::new();
    conflicts.extend(order_cycles(policy));
    conflicts.extend(position_conflicts(policy));
    conflicts.extend(priority_conflicts(policy));
    conflicts
}

fn order_cycles(policy: &Policy) -> Option<Conflict> {
    // Standard iterative DFS 3-coloring over the Order digraph.
    let mut adj: HashMap<&NfName, Vec<&NfName>> = HashMap::new();
    for rule in policy.rules() {
        if let Rule::Order { before, after } = rule {
            adj.entry(before).or_default().push(after);
            adj.entry(after).or_default();
        }
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<&NfName, Color> = adj.keys().map(|k| (*k, Color::White)).collect();
    let nodes: Vec<&NfName> = adj.keys().copied().collect();
    for &start in &nodes {
        if color[start] != Color::White {
            continue;
        }
        // Stack of (node, next-child-index); `path` mirrors the gray chain.
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        color.insert(start, Color::Gray);
        while let Some((node, idx)) = stack.pop() {
            let children = &adj[node];
            if idx < children.len() {
                stack.push((node, idx + 1));
                let child = children[idx];
                match color[child] {
                    Color::White => {
                        color.insert(child, Color::Gray);
                        stack.push((child, 0));
                        path.push(child);
                    }
                    Color::Gray => {
                        let pos = path.iter().position(|n| *n == child).unwrap_or(0);
                        let mut cycle: Vec<NfName> =
                            path[pos..].iter().map(|n| (*n).clone()).collect();
                        cycle.push(child.clone());
                        return Some(Conflict::OrderCycle { cycle });
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                path.pop();
            }
        }
    }
    None
}

fn position_conflicts(policy: &Policy) -> Vec<Conflict> {
    let mut firsts: Vec<NfName> = Vec::new();
    let mut lasts: Vec<NfName> = Vec::new();
    for rule in policy.rules() {
        if let Rule::Position { nf, anchor } = rule {
            let list = match anchor {
                PositionAnchor::First => &mut firsts,
                PositionAnchor::Last => &mut lasts,
            };
            if !list.contains(nf) {
                list.push(nf.clone());
            }
        }
    }
    let mut out = Vec::new();
    for nf in &firsts {
        if lasts.contains(nf) {
            out.push(Conflict::ContradictoryPosition { nf: nf.clone() });
        }
    }
    for (anchor, list) in [
        (PositionAnchor::First, firsts),
        (PositionAnchor::Last, lasts),
    ] {
        if list.len() > 1 {
            out.push(Conflict::AmbiguousAnchor { anchor, nfs: list });
        }
    }
    out
}

fn priority_conflicts(policy: &Policy) -> Vec<Conflict> {
    let mut pairs: HashSet<(NfName, NfName)> = HashSet::new();
    let mut out = Vec::new();
    for rule in policy.rules() {
        if let Rule::Priority { high, low } = rule {
            if pairs.contains(&(low.clone(), high.clone())) {
                out.push(Conflict::ContradictoryPriority {
                    a: low.clone(),
                    b: high.clone(),
                });
            }
            pairs.insert((high.clone(), low.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_policy_has_no_conflicts() {
        let p = Policy::from_chain(["VPN", "Monitor", "FW", "LB"]);
        assert!(check_conflicts(&p).is_empty());
    }

    #[test]
    fn direct_order_contradiction_is_a_cycle() {
        // The paper's example: Order(NF1,before,NF2) and Order(NF2,before,NF1).
        let p = Policy::new().order("NF1", "NF2").order("NF2", "NF1");
        let c = check_conflicts(&p);
        assert!(matches!(c.as_slice(), [Conflict::OrderCycle { .. }]));
    }

    #[test]
    fn longer_cycles_detected() {
        let p = Policy::new()
            .order("A", "B")
            .order("B", "C")
            .order("C", "A");
        let c = check_conflicts(&p);
        assert_eq!(c.len(), 1);
        if let Conflict::OrderCycle { cycle } = &c[0] {
            assert!(cycle.len() >= 4); // A -> B -> C -> A
            assert_eq!(cycle.first(), cycle.last());
        } else {
            panic!("expected cycle");
        }
    }

    #[test]
    fn first_and_last_contradiction() {
        // The paper's example: Position(NF1,first) and Position(NF1,last).
        let p = Policy::new()
            .position("NF1", PositionAnchor::First)
            .position("NF1", PositionAnchor::Last);
        let c = check_conflicts(&p);
        assert!(c
            .iter()
            .any(|c| matches!(c, Conflict::ContradictoryPosition { .. })));
    }

    #[test]
    fn duplicate_same_anchor_is_ambiguous_not_contradictory() {
        let p = Policy::new()
            .position("A", PositionAnchor::First)
            .position("B", PositionAnchor::First);
        let c = check_conflicts(&p);
        assert!(matches!(
            c.as_slice(),
            [Conflict::AmbiguousAnchor {
                anchor: PositionAnchor::First,
                ..
            }]
        ));
    }

    #[test]
    fn repeated_identical_position_is_fine() {
        let p = Policy::new()
            .position("A", PositionAnchor::First)
            .position("A", PositionAnchor::First);
        assert!(check_conflicts(&p).is_empty());
    }

    #[test]
    fn priority_both_ways_conflicts() {
        let p = Policy::new().priority("A", "B").priority("B", "A");
        let c = check_conflicts(&p);
        assert!(matches!(
            c.as_slice(),
            [Conflict::ContradictoryPriority { .. }]
        ));
    }

    #[test]
    fn order_plus_priority_is_not_a_conflict() {
        // §3: an Order rule may be converted into a Priority — coexistence
        // of Order(A,before,B) and Priority(B > A) is meaningful, not a bug.
        let p = Policy::new().order("A", "B").priority("B", "A");
        assert!(check_conflicts(&p).is_empty());
    }

    #[test]
    fn conflicts_render_human_readable() {
        let p = Policy::new().order("X", "Y").order("Y", "X");
        let c = check_conflicts(&p);
        let s = c[0].to_string();
        assert!(s.contains("cycle"), "{s}");
        assert!(s.contains("X") && s.contains("Y"), "{s}");
    }
}
