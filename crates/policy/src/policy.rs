//! Policies: ordered collections of rules plus construction helpers.

use crate::rule::{NfName, PositionAnchor, Rule};

/// An NFP policy: the rules an operator composed to describe one service
/// graph's chaining intent (paper §3, Table 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Policy {
    rules: Vec<Rule>,
}

impl Policy {
    /// An empty policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a policy from rules.
    pub fn from_rules(rules: impl IntoIterator<Item = Rule>) -> Self {
        Self {
            rules: rules.into_iter().collect(),
        }
    }

    /// Convert a **traditional sequential chain** into an equivalent policy
    /// of `Order` rules — `Assign(VPN,1) … Assign(LB,4)` becomes
    /// `Order(VPN,before,Monitor), …` (paper Table 1, rows 1–2). This is how
    /// NFP stays compatible with operators who never write NFP policies.
    pub fn from_chain<I, N>(chain: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<NfName>,
    {
        let nfs: Vec<NfName> = chain.into_iter().map(Into::into).collect();
        let rules = nfs
            .windows(2)
            .map(|w| Rule::Order {
                before: w[0].clone(),
                after: w[1].clone(),
            })
            .collect();
        let mut p = Self { rules };
        // A single-NF "chain" still needs the NF mentioned somewhere.
        if nfs.len() == 1 {
            p.rules.push(Rule::Position {
                nf: nfs[0].clone(),
                anchor: PositionAnchor::First,
            });
        }
        p
    }

    /// Append a rule (builder style).
    #[must_use]
    pub fn with(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Append an `Order` rule (builder style).
    #[must_use]
    pub fn order(self, before: impl Into<NfName>, after: impl Into<NfName>) -> Self {
        self.with(Rule::order(before, after))
    }

    /// Append a `Priority` rule (builder style).
    #[must_use]
    pub fn priority(self, high: impl Into<NfName>, low: impl Into<NfName>) -> Self {
        self.with(Rule::priority(high, low))
    }

    /// Append a `Position` rule (builder style).
    #[must_use]
    pub fn position(self, nf: impl Into<NfName>, anchor: PositionAnchor) -> Self {
        self.with(Rule::position(nf, anchor))
    }

    /// Add a rule in place.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// The rules, in the order the operator wrote them.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the policy has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Every distinct NF the policy mentions, in first-mention order. The
    /// orchestrator also accepts *free NFs* (deployed but unmentioned);
    /// those are supplied separately at compile time.
    pub fn mentioned_nfs(&self) -> Vec<NfName> {
        let mut seen = Vec::new();
        for rule in &self.rules {
            for nf in rule.nfs() {
                if !seen.contains(nf) {
                    seen.push(nf.clone());
                }
            }
        }
        seen
    }
}

/// `Display` writes one rule per line in the paper's syntax, so a printed
/// policy is itself parseable by [`crate::parse_policy`].
impl core::fmt::Display for Policy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{rule}")?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for Policy {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        Self::from_rules(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_chain_generates_windowed_orders() {
        // Paper Table 1 row 2: the north-south chain as Order rules.
        let p = Policy::from_chain(["VPN", "Monitor", "FW", "LB"]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.rules()[0], Rule::order("VPN", "Monitor"));
        assert_eq!(p.rules()[1], Rule::order("Monitor", "FW"));
        assert_eq!(p.rules()[2], Rule::order("FW", "LB"));
    }

    #[test]
    fn single_nf_chain_yields_position() {
        let p = Policy::from_chain(["FW"]);
        assert_eq!(p.len(), 1);
        assert!(matches!(p.rules()[0], Rule::Position { .. }));
    }

    #[test]
    fn builder_composes() {
        // Paper Table 1 row 3: the NFP policy for the Figure 1(b) graph.
        let p = Policy::new()
            .position("VPN", PositionAnchor::First)
            .order("FW", "LB")
            .order("Monitor", "LB");
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.mentioned_nfs()
                .iter()
                .map(|n| n.as_str())
                .collect::<Vec<_>>(),
            vec!["VPN", "FW", "LB", "Monitor"]
        );
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let p = Policy::new()
            .position("VPN", PositionAnchor::First)
            .order("FW", "LB")
            .priority("IPS", "FW");
        let reparsed = crate::parse_policy(&p.to_string()).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn empty_policy() {
        let p = Policy::new();
        assert!(p.is_empty());
        assert!(p.mentioned_nfs().is_empty());
        assert_eq!(p.to_string(), "");
    }
}
