//! Text parser for the NFP policy DSL.
//!
//! The concrete syntax is exactly what the paper prints in Table 1:
//!
//! ```text
//! # north-south intent (comments start with '#')
//! Position(VPN, first)
//! Order(FW, before, LB)
//! Order(Monitor, before, LB)
//! Priority(IPS > FW)
//! ```
//!
//! Keywords are case-insensitive; NF names are case-sensitive identifiers
//! (`[A-Za-z0-9_.-]+`). One rule per line; blank lines and `#` comments are
//! skipped.

use crate::policy::Policy;
use crate::rule::{NfName, PositionAnchor, Rule};

/// A policy-text parse failure, with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending rule.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "policy parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a full policy document.
pub fn parse_policy(text: &str) -> Result<Policy, ParseError> {
    let mut rules = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        rules.push(parse_rule(line).map_err(|message| ParseError {
            line: line_no,
            message,
        })?);
    }
    Ok(Policy::from_rules(rules))
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parse one rule in the paper's syntax.
pub fn parse_rule(line: &str) -> Result<Rule, String> {
    let (head, rest) = line
        .split_once('(')
        .ok_or_else(|| format!("expected `Keyword(...)`, got `{line}`"))?;
    let body = rest
        .strip_suffix(')')
        .ok_or_else(|| "missing closing `)`".to_string())?;
    match head.trim().to_ascii_lowercase().as_str() {
        "order" => parse_order(body),
        "priority" => parse_priority(body),
        "position" => parse_position(body),
        other => Err(format!("unknown rule keyword `{other}`")),
    }
}

fn ident(s: &str) -> Result<NfName, String> {
    let t = s.trim();
    if t.is_empty() {
        return Err("empty NF name".into());
    }
    if !t
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
    {
        return Err(format!("invalid NF name `{t}`"));
    }
    Ok(NfName::new(t))
}

fn parse_order(body: &str) -> Result<Rule, String> {
    let parts: Vec<&str> = body.split(',').collect();
    if parts.len() != 3 {
        return Err("Order needs `Order(NF1, before, NF2)`".into());
    }
    let before_kw = parts[1].trim().to_ascii_lowercase();
    let (first, second) = (ident(parts[0])?, ident(parts[2])?);
    match before_kw.as_str() {
        "before" => Ok(Rule::Order {
            before: first,
            after: second,
        }),
        "after" => Ok(Rule::Order {
            before: second,
            after: first,
        }),
        other => Err(format!("expected `before`/`after`, got `{other}`")),
    }
}

fn parse_priority(body: &str) -> Result<Rule, String> {
    let (high, low) = body
        .split_once('>')
        .ok_or_else(|| "Priority needs `Priority(NF1 > NF2)`".to_string())?;
    if low.contains('>') {
        return Err("Priority takes exactly two NFs".into());
    }
    Ok(Rule::Priority {
        high: ident(high)?,
        low: ident(low)?,
    })
}

fn parse_position(body: &str) -> Result<Rule, String> {
    let (nf, anchor) = body
        .split_once(',')
        .ok_or_else(|| "Position needs `Position(NF, first|last)`".to_string())?;
    let anchor = match anchor.trim().to_ascii_lowercase().as_str() {
        "first" => PositionAnchor::First,
        "last" => PositionAnchor::Last,
        other => return Err(format!("expected `first`/`last`, got `{other}`")),
    };
    Ok(Rule::Position {
        nf: ident(nf)?,
        anchor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_table1_policy() {
        let p =
            parse_policy("Position(VPN, first)\nOrder(FW, before, LB)\nOrder(Monitor, before, LB)")
                .unwrap();
        assert_eq!(p.rules().len(), 3);
        assert_eq!(p.rules()[0], Rule::position("VPN", PositionAnchor::First));
        assert_eq!(p.rules()[1], Rule::order("FW", "LB"));
        assert_eq!(p.rules()[2], Rule::order("Monitor", "LB"));
    }

    #[test]
    fn comments_blanks_and_case() {
        let p = parse_policy(
            "# the east-west chain\n\n  order( IDS , before , Monitor )  # inline\nPRIORITY(IPS > Firewall)\nposition(LB, LAST)",
        )
        .unwrap();
        assert_eq!(p.rules().len(), 3);
        assert_eq!(p.rules()[0], Rule::order("IDS", "Monitor"));
        assert_eq!(p.rules()[1], Rule::priority("IPS", "Firewall"));
        assert_eq!(p.rules()[2], Rule::position("LB", PositionAnchor::Last));
    }

    #[test]
    fn order_after_swaps_operands() {
        assert_eq!(
            parse_rule("Order(LB, after, FW)").unwrap(),
            Rule::order("FW", "LB")
        );
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse_policy("Order(A, before, B)\nOrder(A before B)").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "Order(A, before)",
            "Order(A, sideways, B)",
            "Priority(A < B)",
            "Priority(A > B > C)",
            "Position(A, middle)",
            "Position(A)",
            "Banana(A, B)",
            "Order(A, before, B",
            "Order(, before, B)",
            "Order(A B, before, C)",
        ] {
            assert!(parse_rule(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn names_allow_common_punctuation() {
        assert!(parse_rule("Order(fw-1, before, ids_2.a)").is_ok());
    }
}
