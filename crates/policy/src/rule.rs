//! Rule types of the NFP policy scheme.

use std::sync::Arc;

/// The name of a network function instance as it appears in policies
/// (e.g. `"Firewall"`, `"Monitor"`).
///
/// Names are case-sensitive and compared exactly; they are interned behind
/// an `Arc<str>` so policies and compiled graphs can clone them freely.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NfName(Arc<str>);

impl NfName {
    /// Create a name from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        Self(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for NfName {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for NfName {
    fn from(s: String) -> Self {
        Self::new(s)
    }
}

impl core::fmt::Display for NfName {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Where a [`Rule::Position`] pins its NF.
///
/// "We can only assign an NF as the first or last one in the service graph"
/// (paper §3) — intermediate positions cannot be known before the optimized
/// graph structure exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PositionAnchor {
    /// The NF processes every packet before the rest of the graph.
    First,
    /// The NF processes every packet after the rest of the graph.
    Last,
}

impl core::fmt::Display for PositionAnchor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            PositionAnchor::First => "first",
            PositionAnchor::Last => "last",
        })
    }
}

/// One rule of an NFP policy (paper §3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `Order(before, before, after)` — sequential composition intent; the
    /// orchestrator may convert it to a `Priority` when the pair proves
    /// parallelizable ("the NF with the back order is assigned a higher
    /// priority").
    Order {
        /// NF whose processing comes first.
        before: NfName,
        /// NF whose processing comes second.
        after: NfName,
    },
    /// `Priority(high > low)` — parallel execution intent; on conflicting
    /// actions the system adopts `high`'s result.
    Priority {
        /// NF whose result wins conflicts.
        high: NfName,
        /// NF whose conflicting actions are overridden.
        low: NfName,
    },
    /// `Position(nf, first|last)` — pin to the head or tail of the graph.
    Position {
        /// The pinned NF.
        nf: NfName,
        /// Head or tail.
        anchor: PositionAnchor,
    },
}

impl Rule {
    /// Convenience constructor for `Order(before, before, after)`.
    pub fn order(before: impl Into<NfName>, after: impl Into<NfName>) -> Self {
        Rule::Order {
            before: before.into(),
            after: after.into(),
        }
    }

    /// Convenience constructor for `Priority(high > low)`.
    pub fn priority(high: impl Into<NfName>, low: impl Into<NfName>) -> Self {
        Rule::Priority {
            high: high.into(),
            low: low.into(),
        }
    }

    /// Convenience constructor for `Position(nf, anchor)`.
    pub fn position(nf: impl Into<NfName>, anchor: PositionAnchor) -> Self {
        Rule::Position {
            nf: nf.into(),
            anchor,
        }
    }

    /// The NF names this rule mentions.
    pub fn nfs(&self) -> Vec<&NfName> {
        match self {
            Rule::Order { before, after } => vec![before, after],
            Rule::Priority { high, low } => vec![high, low],
            Rule::Position { nf, .. } => vec![nf],
        }
    }
}

impl core::fmt::Display for Rule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Rule::Order { before, after } => write!(f, "Order({before}, before, {after})"),
            Rule::Priority { high, low } => write!(f, "Priority({high} > {low})"),
            Rule::Position { nf, anchor } => write!(f, "Position({nf}, {anchor})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(
            Rule::order("VPN", "Monitor").to_string(),
            "Order(VPN, before, Monitor)"
        );
        assert_eq!(
            Rule::priority("IPS", "Firewall").to_string(),
            "Priority(IPS > Firewall)"
        );
        assert_eq!(
            Rule::position("VPN", PositionAnchor::First).to_string(),
            "Position(VPN, first)"
        );
    }

    #[test]
    fn nfs_enumerates_mentions() {
        let r = Rule::order("A", "B");
        let names: Vec<_> = r.nfs().into_iter().map(|n| n.as_str().to_owned()).collect();
        assert_eq!(names, vec!["A", "B"]);
        assert_eq!(Rule::position("C", PositionAnchor::Last).nfs().len(), 1);
    }

    #[test]
    fn names_compare_by_content() {
        assert_eq!(NfName::new("FW"), NfName::from("FW"));
        assert_ne!(NfName::new("FW"), NfName::new("fw"));
    }
}
