//! # nfp-policy
//!
//! The NFP **policy specification scheme** (paper §3).
//!
//! Network operators describe sequential *or* parallel NF chaining intents
//! by composing three rule types into a policy:
//!
//! * [`Rule::Order`] — `Order(NF1, before, NF2)`: NF1's processing must be
//!   reflected before NF2's. The orchestrator may still *parallelize* the
//!   two NFs when its dependency analysis proves the result equals
//!   sequential composition.
//! * [`Rule::Priority`] — `Priority(NF1 > NF2)`: run the two NFs in
//!   parallel; when their actions conflict, NF1's result wins.
//! * [`Rule::Position`] — `Position(NF, first|last)`: pin an NF to the head
//!   or tail of the service graph.
//!
//! A traditional sequential chain specification converts losslessly into a
//! policy of `Order` rules ([`Policy::from_chain`]), preserving backwards
//! compatibility — the orchestrator then mines it for parallelism.
//!
//! The paper defers policy conflict detection to future work; this crate
//! implements it ([`conflict`]) as a documented extension.

#![warn(missing_docs)]

pub mod conflict;
pub mod parser;
pub mod policy;
pub mod rule;

pub use conflict::{check_conflicts, Conflict};
pub use parser::{parse_policy, ParseError};
pub use policy::Policy;
pub use rule::{NfName, PositionAnchor, Rule};
