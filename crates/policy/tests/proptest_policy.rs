//! Property tests for the policy layer: printing and reparsing any policy
//! is the identity; the conflict checker is total and agrees with a naive
//! cycle oracle on random Order graphs.

use nfp_policy::{check_conflicts, parse_policy, Conflict, Policy, PositionAnchor, Rule};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn name_strategy() -> impl Strategy<Value = String> {
    proptest::sample::select(vec!["FW", "IDS", "LB", "Mon", "VPN", "NAT", "GW", "Cache"])
        .prop_map(str::to_string)
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    prop_oneof![
        (name_strategy(), name_strategy()).prop_map(|(a, b)| Rule::order(a, b)),
        (name_strategy(), name_strategy()).prop_map(|(a, b)| Rule::priority(a, b)),
        (name_strategy(), any::<bool>()).prop_map(|(a, first)| Rule::position(
            a,
            if first {
                PositionAnchor::First
            } else {
                PositionAnchor::Last
            }
        )),
    ]
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    proptest::collection::vec(rule_strategy(), 0..12).prop_map(Policy::from_rules)
}

/// Naive reachability-based cycle oracle over the Order digraph.
fn has_order_cycle(policy: &Policy) -> bool {
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for r in policy.rules() {
        if let Rule::Order { before, after } = r {
            adj.entry(before.as_str()).or_default().push(after.as_str());
        }
    }
    fn reaches(
        adj: &HashMap<&str, Vec<&str>>,
        from: &str,
        to: &str,
        seen: &mut HashSet<String>,
    ) -> bool {
        if from == to {
            return true;
        }
        if !seen.insert(from.to_string()) {
            return false;
        }
        adj.get(from)
            .map(|nexts| nexts.iter().any(|n| reaches(adj, n, to, seen)))
            .unwrap_or(false)
    }
    adj.iter().any(|(node, nexts)| {
        nexts
            .iter()
            .any(|n| reaches(&adj, n, node, &mut HashSet::new()))
    })
}

proptest! {
    #[test]
    fn display_parse_roundtrip(policy in policy_strategy()) {
        let text = policy.to_string();
        let reparsed = parse_policy(&text).unwrap();
        prop_assert_eq!(policy, reparsed);
    }

    #[test]
    fn conflict_checker_is_total(policy in policy_strategy()) {
        // Never panics, and every reported conflict mentions real NFs.
        let mentioned = policy.mentioned_nfs();
        for c in check_conflicts(&policy) {
            match c {
                Conflict::OrderCycle { cycle } => {
                    prop_assert!(cycle.iter().all(|n| mentioned.contains(n)));
                    prop_assert!(cycle.len() >= 2);
                }
                Conflict::ContradictoryPosition { nf } => prop_assert!(mentioned.contains(&nf)),
                Conflict::ContradictoryPriority { a, b } => {
                    prop_assert!(mentioned.contains(&a) && mentioned.contains(&b));
                }
                Conflict::AmbiguousAnchor { nfs, .. } => {
                    prop_assert!(nfs.iter().all(|n| mentioned.contains(n)));
                }
            }
        }
    }

    #[test]
    fn cycle_detection_agrees_with_oracle(policy in policy_strategy()) {
        let reported = check_conflicts(&policy)
            .iter()
            .any(|c| matches!(c, Conflict::OrderCycle { .. }));
        prop_assert_eq!(reported, has_order_cycle(&policy));
    }

    #[test]
    fn chain_policies_never_conflict(chain in proptest::collection::vec(name_strategy(), 1..8)) {
        // Even with repeated NF names, windowed Order rules over a chain
        // only conflict when the same pair appears in both directions.
        let distinct: Vec<String> = {
            let mut seen = std::collections::BTreeSet::new();
            chain.into_iter().filter(|n| seen.insert(n.clone())).collect()
        };
        let policy = Policy::from_chain(distinct);
        prop_assert!(check_conflicts(&policy).is_empty());
    }
}
