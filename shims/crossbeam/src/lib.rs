//! Offline stand-in for the `crossbeam` crate (see `shims/rand` for the
//! rationale). Only `crossbeam::thread::scope` is provided — the one
//! entry point this workspace uses — implemented on top of
//! `std::thread::scope`, which has equivalent soundness guarantees since
//! Rust 1.63.

#![warn(missing_docs)]

/// Scoped threads with the `crossbeam::thread` API.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; spawned closures receive a reference so they can
    /// spawn further scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives
        /// the scope so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope: all threads spawned within are joined before this
    /// returns. `Err` carries the panic payload if the closure or any
    /// unjoined child panicked (crossbeam's contract).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_and_returns_value() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                handles.push(scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    21
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(out, 21 * 8);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 5).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 5);
    }

    #[test]
    fn panic_in_child_becomes_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn::<_, ()>(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
