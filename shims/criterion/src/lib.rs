//! Offline stand-in for the `criterion` crate (see `shims/rand` for the
//! rationale). Provides `black_box`, `Criterion`, `BenchmarkId`,
//! benchmark groups and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a plain warm-up + timed-loop harness printing
//! `name ... time: X ns/iter` lines — adequate for relative comparisons
//! and for the calibration numbers the virtual-time model consumes; it
//! performs no statistical analysis or HTML reporting.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Parameterized benchmark naming, mirroring criterion's `BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendering as just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        Self { id: p.to_string() }
    }

    /// An id rendering as `function/parameter`.
    pub fn new<F: Into<String>, P: std::fmt::Display>(function: F, p: P) -> Self {
        Self {
            id: format!("{}/{p}", function.into()),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The per-benchmark measurement driver.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Result slot: (iterations, elapsed).
    measured: Option<(u64, Duration)>,
}

impl Bencher<'_> {
    /// Time `routine` by running it in batches until the configured
    /// measurement window elapses.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses, growing the
        // batch size geometrically to amortize clock reads.
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.config.warm_up_time {
            for _ in 0..batch {
                black_box(routine());
            }
            batch = (batch * 2).min(1 << 20);
        }
        // Measurement.
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            if start.elapsed() >= self.config.measurement_time {
                break;
            }
        }
        self.measured = Some((iters, start.elapsed()));
    }
}

#[derive(Debug, Clone)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The benchmark harness handle.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
    filter: Option<String>,
}

impl Criterion {
    /// Harness with default windows (criterion spells this as an
    /// inherent constructor, so the shim provides it too).
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        <Self as Default>::default()
    }

    /// Ignored (kept for API compatibility): criterion's target sample
    /// count. The shim sizes batches by time alone.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Set the timed measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Install a substring filter from CLI args (set by `criterion_main!`).
    pub fn with_filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    fn should_run(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&self, name: &str, mut f: F) {
        if !self.should_run(name) {
            return;
        }
        let mut b = Bencher {
            config: &self.config,
            measured: None,
        };
        f(&mut b);
        match b.measured {
            Some((iters, elapsed)) if iters > 0 => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:<40} time: {ns:>12.1} ns/iter ({iters} iters)");
            }
            _ => println!("{name:<40} time: <no measurement>"),
        }
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group; `id` may be a `&str` or a
    /// [`BenchmarkId`].
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, f);
        self
    }

    /// End the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions, optionally with a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name(filter: ::std::option::Option<::std::string::String>) {
            let mut criterion: $crate::Criterion = $config;
            criterion = criterion.with_filter(filter);
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; a bare positional arg is a
            // name filter, like criterion's CLI.
            let filter = ::std::env::args()
                .skip(1)
                .find(|a| !a.starts_with('-'));
            $( $group(filter.clone()); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        c.bench_function("spin", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        let mut g = c.benchmark_group("grp");
        g.bench_function(BenchmarkId::from_parameter(4), |b| {
            b.iter(|| black_box(1 + 1))
        });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default().with_filter(Some("nope".into()));
        // Would run forever-ish if not skipped, given default windows? No —
        // it would just run; the point is it must be skipped silently.
        c.bench_function("other", |b| b.iter(|| ()));
    }
}
