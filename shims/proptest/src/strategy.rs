//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Object-safe: only [`Strategy::generate`] is required; the combinators
/// are `Sized`-gated defaults, so `Box<dyn Strategy<Value = V>>` works.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Randomly permute a generated `Vec`.
    fn prop_shuffle<T>(self) -> Shuffle<Self>
    where
        Self: Sized + Strategy<Value = Vec<T>>,
    {
        Shuffle { inner: self }
    }

    /// Discard generated values failing the predicate by re-drawing
    /// (bounded; panics if the filter rejects persistently).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform values of a primitive type — `any::<T>()`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Primitive types `any` can produce.
pub trait ArbitraryValue {
    /// Draw one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*
    };
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*
    };
}
float_range_strategy!(f32, f64);

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_shuffle`] adapter.
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        rng.shuffle(&mut v);
        v
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 draws in a row", self.whence);
    }
}

/// `prop_oneof!`'s backing type: uniform choice between same-typed
/// strategies.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the macro's boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3usize..7).generate(&mut r);
            assert!((3..7).contains(&v));
            let w = (2usize..=5).generate(&mut r);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut r = rng();
        let s = (0u32..10, any::<bool>()).prop_map(|(n, b)| if b { n + 100 } else { n });
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v < 10 || (100..110).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng();
        let s = Just((0..50).collect::<Vec<i32>>()).prop_shuffle();
        let mut v = s.generate(&mut r);
        v.sort_unstable();
        assert_eq!(v, (0..50).collect::<Vec<i32>>());
    }

    #[test]
    fn union_draws_every_arm() {
        let mut r = rng();
        let s = Union::new(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
