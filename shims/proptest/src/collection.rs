//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A size specification for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl SizeRange {
    pub(crate) fn draw(&self, rng: &mut TestRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            self.min + rng.below(self.max - self.min + 1)
        }
    }
}

/// `Vec`s of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_sizes_within_range() {
        let mut rng = TestRng::from_seed(9);
        let s = vec(any::<u8>(), 2..6);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
