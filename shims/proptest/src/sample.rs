//! Sampling strategies: `select` one element, or an order-preserving
//! `subsequence`.

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Pick one element of `options`, uniformly.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over empty options");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}

/// Pick an order-preserving subsequence of `source` whose length falls in
/// `size` (clamped to the source length).
pub fn subsequence<T: Clone>(source: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        source,
        size: size.into(),
    }
}

/// Strategy returned by [`subsequence`].
#[derive(Debug, Clone)]
pub struct Subsequence<T: Clone> {
    source: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let max = self.size.max.min(self.source.len());
        let min = self.size.min.min(max);
        let k = if min == max {
            min
        } else {
            min + rng.below(max - min + 1)
        };
        // Draw k distinct indices, then emit them in source order.
        let mut indices: Vec<usize> = (0..self.source.len()).collect();
        rng.shuffle(&mut indices);
        indices.truncate(k);
        indices.sort_unstable();
        indices
            .into_iter()
            .map(|i| self.source[i].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_only_returns_options() {
        let mut rng = TestRng::from_seed(3);
        let s = select(vec!["a", "b", "c"]);
        for _ in 0..100 {
            assert!(["a", "b", "c"].contains(&s.generate(&mut rng)));
        }
    }

    #[test]
    fn subsequence_preserves_order_and_size() {
        let mut rng = TestRng::from_seed(4);
        let src: Vec<u32> = (0..10).collect();
        let s = subsequence(src.clone(), 2..=5);
        for _ in 0..500 {
            let sub = s.generate(&mut rng);
            assert!((2..=5).contains(&sub.len()));
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            assert_eq!(sub, sorted, "order preserved");
            assert!(sub.iter().all(|x| src.contains(x)));
            let mut dedup = sub.clone();
            dedup.dedup();
            assert_eq!(dedup, sub, "distinct elements");
        }
    }
}
