//! Offline stand-in for the `proptest` crate (see `shims/rand` for the
//! rationale). Implements the subset this workspace uses: the
//! [`proptest!`] test macro, the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_shuffle` / `boxed`, range / tuple / `any` / `Just`
//! strategies, [`collection::vec`], [`sample::select`] /
//! [`sample::subsequence`], `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message, `Debug`-formatted where the assertion captured them), the
//!   case index, and the seed, but is not minimized. Regressions worth
//!   keeping should be promoted to named `#[test]`s — which this repo
//!   does for every recorded counterexample.
//! * **`*.proptest-regressions` files are not replayed** — the `cc` seed
//!   hashes are upstream-internal. The files are kept as documentation of
//!   the shrunken counterexamples; named tests carry the actual coverage.
//! * Case count defaults to 256 and can be overridden per-run with the
//!   `PROPTEST_CASES` environment variable, and the base seed with
//!   `PROPTEST_SEED` (both plain integers).

#![warn(missing_docs)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each function runs `config.cases` times with
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                    $( let $pat = $crate::strategy::Strategy::generate(&($strat), __rng); )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    __result
                });
            }
        )*
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Fallible assertion: fails the current case without poisoning the
/// whole process the way `panic!` would inside caught contexts.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fallible equality assertion with value capture.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)*), left, right),
            ));
        }
    }};
}

/// Fallible inequality assertion with value capture.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let left = $a;
        let right = $b;
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (both `{:?}`)", format!($($fmt)*), left),
            ));
        }
    }};
}
