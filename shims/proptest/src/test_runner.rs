//! The case runner: deterministic per-test RNG, configuration, and the
//! failure type the `prop_assert*` macros produce.

use rand::{Rng, SeedableRng, StdRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration (the subset of upstream's fields we honor).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The inputs were rejected (e.g. `prop_assume`); not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A falsification with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies. Deterministic per (test name, case
/// index, base seed), so failures print everything needed to re-run them.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeded construction.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// One uniformly random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// FNV-1a, used to give every property its own seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive one property: `cases` generated inputs, each caught
/// individually so the failing case index and seed are reported.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let cases = env_u64("PROPTEST_CASES")
        .map(|c| c as u32)
        .unwrap_or(config.cases)
        .max(1);
    let base = env_u64("PROPTEST_SEED").unwrap_or(DEFAULT_SEED);
    let stream = base ^ hash_name(name);
    for i in 0..cases {
        let seed = stream.wrapping_add(u64::from(i));
        let mut rng = TestRng::from_seed(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "property `{name}` falsified at case {i}/{cases} \
                     (PROPTEST_SEED={base}): {msg}"
                );
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".into());
                panic!(
                    "property `{name}` panicked at case {i}/{cases} \
                     (PROPTEST_SEED={base}): {msg}"
                );
            }
        }
    }
}

/// Base seed when `PROPTEST_SEED` is unset.
const DEFAULT_SEED: u64 = 0x5eed_cafe_f00d_d00d;
