//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in air-gapped environments with no crates.io
//! access, so the external crates it would normally pull are replaced by
//! minimal in-repo shims (`shims/*`) that implement exactly the API
//! surface the workspace uses. This one covers `StdRng::seed_from_u64`,
//! the `Rng::gen::<T>()` entry point and `gen_range` over integer ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high-quality,
//! deterministic per seed, and stable across platforms. It does **not**
//! reproduce the upstream `rand` bit streams; everything in this repo only
//! relies on per-seed determinism, not on specific values.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from an RNG (the shim's stand-in
/// for `rand`'s `Standard` distribution).
pub trait FromRandom {
    /// Draw one uniformly distributed value.
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {
        $(impl FromRandom for $t {
            fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// The random-number-generator interface.
pub trait Rng {
    /// The primitive source: one uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Sample a uniformly distributed value of type `T`.
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// Sample uniformly from `range` (half-open, must be non-empty).
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range over empty range");
        let span = range.end - range.start;
        // Rejection sampling to remove modulo bias.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + v % span;
            }
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256** — the shim's `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as the xoshiro authors recommend.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }

    #[test]
    fn works_through_unsized_rng() {
        fn sample_both<R: Rng + ?Sized>(rng: &mut R) -> (f64, u32) {
            (rng.gen(), rng.gen())
        }
        let mut r = StdRng::seed_from_u64(3);
        let (f, _) = sample_both(&mut r);
        assert!((0.0..1.0).contains(&f));
    }
}
