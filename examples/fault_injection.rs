//! Fault injection (in the spirit of smoltcp's example options): drive the
//! NFP graph with hostile inputs — malicious payloads that trip the inline
//! IDS, ACL-matching flows the firewall denies, corrupted frames the
//! classifier must reject, and a deliberately undersized packet pool — and
//! watch the system degrade gracefully (drops and rejections, never leaks
//! or wedges).
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use nfp_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // IDS -> [Monitor | LB(copy)] — the east-west graph.
    let mut registry = Registry::paper_table2();
    let mut ids = registry.get("NIDS").unwrap().clone().drops();
    ids.nf_type = "IDS".into();
    registry.register(ids);
    let compiled = compile(
        &Policy::from_chain(["IDS", "Monitor", "LoadBalancer"]),
        &registry,
        &[],
        &CompileOptions::default(),
    )
    .unwrap();
    println!("graph under test: {}\n", compiled.graph.describe());

    let program = compiled.program(1).unwrap();
    let nfs: Vec<Box<dyn NetworkFunction>> = compiled
        .graph
        .nodes
        .iter()
        .map(|n| -> Box<dyn NetworkFunction> {
            match n.name.as_str() {
                "IDS" => Box::new(nfp_core::nf::ids::Ids::with_synthetic_signatures(
                    "IDS",
                    100,
                    nfp_core::nf::ids::IdsMode::Inline,
                )),
                "Monitor" => Box::new(nfp_core::nf::monitor::Monitor::new("Monitor")),
                "LoadBalancer" => Box::new(nfp_core::nf::lb::LoadBalancer::with_uniform_backends(
                    "LB", 4,
                )),
                other => unreachable!("{other}"),
            }
        })
        .collect();
    // A deliberately tiny pool: 8 slots for a graph needing 2 per packet.
    let mut engine = nfp_core::dataplane::SyncEngine::new(program, nfs, 8);

    // 30% of packets carry an IDS signature; 10% are corrupted frames.
    let mut gen = TrafficGenerator::new(TrafficSpec {
        flows: 16,
        sizes: SizeDistribution::Fixed(256),
        malicious_fraction: 0.3,
        ..TrafficSpec::default()
    });
    let mut rng = StdRng::seed_from_u64(1);
    let (mut ok, mut dropped, mut rejected) = (0u64, 0u64, 0u64);
    for _ in 0..2_000 {
        let mut pkt = gen.next_packet();
        if rng.gen::<f64>() < 0.10 {
            // Corrupt the EtherType or truncate — the classifier must
            // reject, not crash.
            let len = pkt.len();
            pkt.data_mut()[12] ^= 0xff;
            let _ = len;
            pkt.invalidate();
        }
        match engine.process(pkt) {
            Ok(out) => match out.delivered() {
                Some(_) => ok += 1,
                None => dropped += 1,
            },
            Err(e) => {
                rejected += 1;
                assert!(matches!(
                    e,
                    nfp_core::dataplane::classifier::AdmitError::Unparseable
                ));
            }
        }
        assert_eq!(engine.pool_in_use(), 0, "leak under fault injection");
    }
    println!("delivered: {ok}");
    println!("dropped by IDS: {dropped}");
    println!("rejected by classifier (corrupted): {rejected}");
    assert_eq!(ok + dropped + rejected, 2_000);
    assert!(dropped > 300, "IDS should catch the malicious share");
    assert!(rejected > 100, "classifier should reject corrupted frames");
    println!("\nno leaks, no wedges: every packet accounted for.");
}
