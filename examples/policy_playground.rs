//! Policy playground: parse NFP policy text (the paper's §3 DSL), check it
//! for conflicts, compile it, and print the resulting graph, tables and
//! expected resource overhead.
//!
//! ```sh
//! cargo run --example policy_playground
//! # or bring your own policy file:
//! cargo run --example policy_playground -- my-policy.nfp
//! ```

use nfp_core::orchestrator::tables;
use nfp_core::prelude::*;
use nfp_core::sim::overhead;

const DEMO_POLICY: &str = "
# Figure 1(b): the north-south service graph, written as NFP rules.
Position(VPN, first)
Order(Firewall, before, LoadBalancer)
Order(Monitor, before, LoadBalancer)

# An explicit parallel intent with conflict resolution (paper §3):
Priority(IPS > Firewall)
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).expect("readable policy file"),
        None => DEMO_POLICY.to_string(),
    };
    println!("policy text:\n{}", text.trim());

    let policy = match parse_policy(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };

    // Conflict detection (the paper's future work, implemented here).
    let conflicts = nfp_core::policy::check_conflicts(&policy);
    if conflicts.is_empty() {
        println!("\nno policy conflicts detected");
    } else {
        for c in &conflicts {
            println!("\nconflict: {c}");
        }
    }

    // Compile against Table 2 plus an IPS profile.
    let mut registry = Registry::paper_table2();
    registry.register(
        ActionProfile::new("IPS")
            .reads([
                FieldId::Sip,
                FieldId::Dip,
                FieldId::Sport,
                FieldId::Dport,
                FieldId::Payload,
            ])
            .drops(),
    );
    let compiled = match compile(&policy, &registry, &[], &CompileOptions::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            std::process::exit(1);
        }
    };
    println!("\ncompiled graph: {}", compiled.graph.describe());
    println!(
        "equivalent chain length: {}",
        compiled.graph.equivalent_chain_length()
    );
    println!("max parallelism degree:  {}", compiled.graph.max_degree());
    println!(
        "copies per packet:       {}",
        compiled.graph.copies_per_packet()
    );
    for w in &compiled.warnings {
        println!("warning: {w:?}");
    }

    // The §6.3.1 overhead this graph costs under data-center traffic.
    let copies = compiled.graph.copies_per_packet();
    println!(
        "resource overhead (DC mix): {:.1}%",
        copies as f64 * overhead::datacenter_overhead(2) * 100.0
    );

    // The runtime tables the infrastructure would install (§4.4.3/§5).
    let t = tables::generate(&compiled.graph, 42);
    println!("\nclassifier entry actions (MID {}):", t.mid);
    for a in &t.entry_actions {
        println!("  {a:?}");
    }
    for (i, cfg) in t.nf_configs.iter().enumerate() {
        println!(
            "FT slice for {}: {:?} (access {:?}, on_drop {:?})",
            compiled.graph.nodes[i].name, cfg.actions, cfg.access, cfg.on_drop
        );
    }
    for spec in &t.merge_specs {
        println!(
            "merge spec @segment {}: expect {} arrivals, ops {:?}",
            spec.segment, spec.total_count, spec.ops
        );
    }
}
