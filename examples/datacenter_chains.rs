//! The paper's two real-world data-center chains (Figure 13), end to end:
//! compile, inspect warnings, execute on the *threaded* engine (one thread
//! per NF, classifier, merger agent, two merger instances) and verify the
//! outputs against run-to-completion sequential semantics.
//!
//! ```sh
//! cargo run --release --example datacenter_chains
//! ```

use nfp_core::prelude::*;
use std::collections::HashMap;

fn make(name: &str) -> Box<dyn NetworkFunction> {
    use nfp_core::nf::*;
    match name.split('#').next().unwrap() {
        "VPN" => Box::new(vpn::Vpn::new(name, [9; 16], 7, vpn::VpnMode::Encapsulate)),
        "Monitor" => Box::new(monitor::Monitor::new(name)),
        "Firewall" => Box::new(firewall::Firewall::with_synthetic_acl(name, 100)),
        "LB" | "LoadBalancer" => Box::new(lb::LoadBalancer::with_uniform_backends(name, 8)),
        "IDS" => Box::new(ids::Ids::with_synthetic_signatures(
            name,
            100,
            ids::IdsMode::Inline,
        )),
        other => unreachable!("{other}"),
    }
}

fn registry() -> Registry {
    let mut r = Registry::paper_table2();
    let mut lb = r.get("LoadBalancer").unwrap().clone();
    lb.nf_type = "LB".into();
    r.register(lb);
    // The evaluated IDS is inline (drop-capable), per §6.1.
    let mut ids = r.get("NIDS").unwrap().clone().drops();
    ids.nf_type = "IDS".into();
    r.register(ids);
    r
}

fn main() {
    for (label, chain) in [
        ("north-south", vec!["VPN", "Monitor", "Firewall", "LB"]),
        ("east-west", vec!["IDS", "Monitor", "LB"]),
    ] {
        println!("== {label} chain: {chain:?} ==");
        let policy = Policy::from_chain(chain.iter().copied());
        let compiled = compile(&policy, &registry(), &[], &CompileOptions::default()).unwrap();
        println!("  graph: {}", compiled.graph.describe());
        for w in &compiled.warnings {
            println!("  warning: {w:?}");
        }

        // Threaded run.
        let program = compiled.program(1).unwrap();
        let nfs: Vec<_> = compiled
            .graph
            .nodes
            .iter()
            .map(|n| make(n.name.as_str()))
            .collect();
        // In-flight window of 1 keeps packet order identical to the
        // sequential oracle — the VPN's AH sequence numbers (and thus its
        // CTR nonces) depend on processing order.
        let mut engine = Engine::new(
            program,
            nfs,
            EngineConfig {
                keep_packets: true,
                max_in_flight: 1,
                ..EngineConfig::default()
            },
        )
        .expect("engine config");
        let traffic = TrafficGenerator::new(TrafficSpec {
            flows: 32,
            sizes: SizeDistribution::datacenter(),
            ..TrafficSpec::default()
        })
        .batch(500);
        let report = engine.run(traffic.clone());
        println!(
            "  threaded engine: {} delivered, {} dropped, wall {:?}",
            report.delivered, report.dropped, report.elapsed
        );

        // Oracle: run-to-completion sequential semantics.
        let mut rtc = RunToCompletion::new(chain.iter().map(|n| make(n)).collect());
        let expected = rtc.process_batch(traffic);
        let expect_by_payload: HashMap<Vec<u8>, Vec<u8>> = expected
            .iter()
            .map(|p| (p.payload().unwrap()[..8].to_vec(), p.data().to_vec()))
            .collect();
        let mut matched = 0usize;
        for p in &report.packets {
            // North-south outputs are VPN-encapsulated; match on the
            // packet-ID the generator stamped before encryption... the
            // parallel and sequential VPNs encrypt identically, so the
            // full frame comparison is still exact.
            let key = p.meta().pid().to_be_bytes().to_vec();
            let _ = key;
            if expect_by_payload.values().any(|d| d == p.data()) {
                matched += 1;
            }
        }
        println!(
            "  correctness: {matched}/{} parallel outputs found among sequential outputs\n",
            report.packets.len()
        );
        assert_eq!(matched, report.packets.len());
    }
}
