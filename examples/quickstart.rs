//! Quickstart: compile a policy into a parallel service graph and push
//! packets through it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nfp_core::prelude::*;

fn main() {
    // 1. An operator writes a traditional sequential chain — NFP converts
    //    it into Order rules automatically (paper Table 1).
    let policy = Policy::from_chain(["Monitor", "Firewall", "LoadBalancer"]);
    println!("policy:\n{policy}\n");

    // 2. The orchestrator identifies NF dependencies (Algorithm 1 over the
    //    built-in Table 2 action profiles) and compiles a service graph.
    let registry = Registry::paper_table2();
    let compiled =
        compile(&policy, &registry, &[], &CompileOptions::default()).expect("policy compiles");
    let graph = &compiled.graph;
    println!("compiled graph:   {}", graph.describe());
    println!(
        "equivalent length: {} (sequential would be 3)",
        graph.equivalent_chain_length()
    );
    println!("copies per packet: {}\n", graph.copies_per_packet());

    // 3. Seal the graph into a validated Program artifact — runtime tables
    //    (classification / forwarding / merging, §4.4.3) plus the wiring
    //    plan the engines execute — and instantiate the NFs.
    let program = compiled.program(1).expect("program seals");
    let nfs: Vec<Box<dyn NetworkFunction>> = graph
        .nodes
        .iter()
        .map(|n| -> Box<dyn NetworkFunction> {
            match n.name.as_str() {
                "Monitor" => Box::new(nfp_core::nf::monitor::Monitor::new("Monitor")),
                "Firewall" => Box::new(nfp_core::nf::firewall::Firewall::with_synthetic_acl(
                    "Firewall", 100,
                )),
                "LoadBalancer" => Box::new(nfp_core::nf::lb::LoadBalancer::with_uniform_backends(
                    "LB", 4,
                )),
                other => unreachable!("{other}"),
            }
        })
        .collect();

    // 4. Run packets through the deterministic engine. (For multi-core
    //    scale-out, hand the same Program to `ShardedEngine::new` with a
    //    shard count — see the `shard_scale` bench.)
    let mut engine = SyncEngine::new(program, nfs, 64);
    let mut gen = TrafficGenerator::new(TrafficSpec {
        flows: 4,
        sizes: SizeDistribution::Fixed(128),
        ..TrafficSpec::default()
    });
    for i in 0..5 {
        let pkt = gen.next_packet();
        let before = pkt.five_tuple().unwrap();
        match engine.process(pkt).unwrap().delivered() {
            Some(out) => {
                let after = out.five_tuple().unwrap();
                println!(
                    "pkt {i}: {}:{} -> {}:{}  became  {}:{} -> {}:{}  (LB rewrote the addresses)",
                    before.0, before.2, before.1, before.3, after.0, after.2, after.1, after.3
                );
            }
            None => println!("pkt {i}: dropped"),
        }
    }
    println!(
        "\ndelivered={} dropped={}",
        engine.delivered, engine.dropped
    );
}
