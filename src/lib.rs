//! NFP-rs repository root: examples and cross-crate integration tests
//! live against this package; the implementation is in `crates/*`.
pub use nfp_core as core;
